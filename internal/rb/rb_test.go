package rb

import (
	"errors"
	"sync"
	"testing"
	"time"

	"remon/internal/mem"
	"remon/internal/vkernel"
)

// rbEnv is a two-replica harness: a kernel, two processes with the RB
// segment mapped at different addresses, and a thread in each.
type rbEnv struct {
	k             *vkernel.Kernel
	master, slave *vkernel.Thread
	buf           *Buffer
	mBase, sBase  mem.Addr
}

// testArbiter spins until the partition drains, then resets it.
type testArbiter struct{ resets int }

func (a *testArbiter) ResetPartition(b *Buffer, part int) {
	for !b.Drained(part) {
		time.Sleep(50 * time.Microsecond)
	}
	b.DoReset(part)
	a.resets++
}

func newRBEnv(t *testing.T, segSize uint64, parts int, arb Arbiter) *rbEnv {
	t.Helper()
	k := vkernel.New(nil)
	mp := k.NewProcess("master", 1, 0)
	sp := k.NewProcess("slave", 2, 1)
	mt := mp.NewThread(nil)
	st := sp.NewThread(nil)

	shmID := mt.RawSyscall(vkernel.SysShmget, 0, segSize, 0)
	if !shmID.Ok() {
		t.Fatalf("shmget: %v", shmID.Errno)
	}
	seg := k.ShmSegment(int(shmID.Val))
	mr := mt.RawSyscall(vkernel.SysShmat, shmID.Val, 0, 0)
	sr := st.RawSyscall(vkernel.SysShmat, shmID.Val, 0, 0)
	if !mr.Ok() || !sr.Ok() {
		t.Fatalf("shmat: %v / %v", mr.Errno, sr.Errno)
	}
	if arb == nil {
		arb = &testArbiter{}
	}
	buf, err := New(seg, 2, parts, arb)
	if err != nil {
		t.Fatal(err)
	}
	return &rbEnv{k: k, master: mt, slave: st, buf: buf,
		mBase: mem.Addr(mr.Val), sBase: mem.Addr(sr.Val)}
}

func TestReserveCompleteConsume(t *testing.T) {
	e := newRBEnv(t, 1<<20, 1, nil)
	w := e.buf.NewWriter(0, e.mBase)
	r := e.buf.NewReader(0, 1, e.sBase)

	call := &vkernel.Call{Num: vkernel.SysRead, Args: [6]uint64{3, 0x1000, 64}}
	res, err := w.Reserve(e.master, call, FlagMasterCall, nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	res.Complete(e.master, 11, 0, []byte("hello world"))

	ev, err := r.Next(e.slave)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Nr != vkernel.SysRead || ev.Args[0] != 3 || ev.Args[2] != 64 {
		t.Fatalf("entry = %+v", ev)
	}
	ret, errno, out := ev.WaitResults(e.slave)
	if ret != 11 || errno != 0 || string(out) != "hello world" {
		t.Fatalf("results = %d %v %q", ret, errno, out)
	}
	ev.Consume()
	if e.buf.ConsumedBy(0, 1) != 1 {
		t.Fatal("consumed counter not published")
	}
}

func TestInPayloadComparison(t *testing.T) {
	e := newRBEnv(t, 1<<20, 1, nil)
	w := e.buf.NewWriter(0, e.mBase)
	r := e.buf.NewReader(0, 1, e.sBase)

	call := &vkernel.Call{Num: vkernel.SysWrite, Args: [6]uint64{1, 0x2000, 5}}
	res, err := w.Reserve(e.master, call, FlagMasterCall, []byte("out-5"), 0)
	if err != nil {
		t.Fatal(err)
	}
	res.Complete(e.master, 5, 0, nil)

	ev, err := r.Next(e.slave)
	if err != nil {
		t.Fatal(err)
	}
	// Matching slave call (different buffer address is fine — addresses
	// are diversified; only contents are compared).
	sc := &vkernel.Call{Num: vkernel.SysWrite, Args: [6]uint64{1, 0x9999000, 5}}
	if err := ev.CompareCall(e.slave, sc, 0b101, []byte("out-5")); err != nil {
		t.Fatalf("matching call flagged divergent: %v", err)
	}
	// Divergent payload.
	if err := ev.CompareCall(e.slave, sc, 0b101, []byte("EVIL!")); !errors.Is(err, ErrDiverged) {
		t.Fatalf("divergent payload = %v, want ErrDiverged", err)
	}
	// Divergent register.
	bad := &vkernel.Call{Num: vkernel.SysWrite, Args: [6]uint64{2, 0x9999000, 5}}
	if err := ev.CompareCall(e.slave, bad, 0b101, nil); !errors.Is(err, ErrDiverged) {
		t.Fatalf("divergent reg = %v, want ErrDiverged", err)
	}
	// Divergent syscall number.
	wrongNr := &vkernel.Call{Num: vkernel.SysRead, Args: sc.Args}
	if err := ev.CompareCall(e.slave, wrongNr, 0, nil); !errors.Is(err, ErrDiverged) {
		t.Fatalf("divergent nr = %v, want ErrDiverged", err)
	}
}

func TestSlaveBlocksUntilPublish(t *testing.T) {
	e := newRBEnv(t, 1<<20, 1, nil)
	w := e.buf.NewWriter(0, e.mBase)
	r := e.buf.NewReader(0, 1, e.sBase)

	got := make(chan uint64, 1)
	go func() {
		ev, err := r.Next(e.slave)
		if err != nil {
			t.Errorf("Next: %v", err)
			got <- 0
			return
		}
		ret, _, _ := ev.WaitResults(e.slave)
		ev.Consume()
		got <- ret
	}()

	// Give the slave time to park.
	time.Sleep(2 * time.Millisecond)
	call := &vkernel.Call{Num: vkernel.SysGetpid}
	e.master.Clock.Advance(777777)
	res, err := w.Reserve(e.master, call, FlagBlocking|FlagMasterCall, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	res.Complete(e.master, 42, 0, nil)
	if v := <-got; v != 42 {
		t.Fatalf("slave result = %d", v)
	}
	// Virtual-time handoff: the slave synced to the master's publish time.
	if e.slave.Clock.Now() < 777777 {
		t.Fatalf("slave clock %v did not sync to master publish", e.slave.Clock.Now())
	}
}

func TestTooBig(t *testing.T) {
	e := newRBEnv(t, 64*1024, 1, nil)
	w := e.buf.NewWriter(0, e.mBase)
	call := &vkernel.Call{Num: vkernel.SysWrite}
	if _, err := w.Reserve(e.master, call, 0, make([]byte, 1<<20), 0); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversized reserve = %v, want ErrTooBig", err)
	}
}

func TestOverflowResetRoundTrip(t *testing.T) {
	arb := &testArbiter{}
	e := newRBEnv(t, 8*1024, 1, arb) // small buffer: forces resets
	w := e.buf.NewWriter(0, e.mBase)
	r := e.buf.NewReader(0, 1, e.sBase)

	const total = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			ev, err := r.Next(e.slave)
			if err != nil {
				t.Errorf("slave Next %d: %v", i, err)
				return
			}
			ret, _, out := ev.WaitResults(e.slave)
			if int(ret) != i || len(out) != 100 {
				t.Errorf("entry %d: ret=%d len=%d", i, ret, len(out))
				return
			}
			ev.Consume()
		}
	}()

	payload := make([]byte, 100)
	for i := 0; i < total; i++ {
		call := &vkernel.Call{Num: vkernel.SysRead, Args: [6]uint64{uint64(i)}}
		res, err := w.Reserve(e.master, call, FlagMasterCall, nil, 100)
		if err != nil {
			t.Fatalf("Reserve %d: %v", i, err)
		}
		res.Complete(e.master, uint64(i), 0, payload)
	}
	wg.Wait()
	if arb.resets == 0 {
		t.Fatal("expected at least one arbiter reset with an 8 KiB buffer")
	}
}

func TestPartitionsIndependent(t *testing.T) {
	e := newRBEnv(t, 1<<20, 4, nil)
	w0 := e.buf.NewWriter(0, e.mBase)
	w3 := e.buf.NewWriter(3, e.mBase)
	r0 := e.buf.NewReader(0, 1, e.sBase)
	r3 := e.buf.NewReader(3, 1, e.sBase)

	c0 := &vkernel.Call{Num: vkernel.SysGetpid}
	c3 := &vkernel.Call{Num: vkernel.SysGettid}
	res3, err := w3.Reserve(e.master, c3, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	res3.Complete(e.master, 33, 0, nil)
	res0, err := w0.Reserve(e.master, c0, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	res0.Complete(e.master, 11, 0, nil)

	ev3, err := r3.Next(e.slave)
	if err != nil {
		t.Fatal(err)
	}
	if ev3.Nr != vkernel.SysGettid {
		t.Fatal("partition 3 entry wrong")
	}
	ev0, err := r0.Next(e.slave)
	if err != nil {
		t.Fatal(err)
	}
	if ev0.Nr != vkernel.SysGetpid {
		t.Fatal("partition 0 entry wrong")
	}
}

func TestSignalsPendingFlag(t *testing.T) {
	e := newRBEnv(t, 1<<20, 1, nil)
	if e.buf.SignalsPending() {
		t.Fatal("flag set initially")
	}
	e.buf.SetSignalsPending(true)
	if !e.buf.SignalsPending() {
		t.Fatal("flag not visible")
	}
	e.buf.SetSignalsPending(false)
	if e.buf.SignalsPending() {
		t.Fatal("flag not cleared")
	}
}

func TestMultipleEntriesSequential(t *testing.T) {
	e := newRBEnv(t, 1<<20, 1, nil)
	w := e.buf.NewWriter(0, e.mBase)
	r := e.buf.NewReader(0, 1, e.sBase)
	for i := 0; i < 50; i++ {
		c := &vkernel.Call{Num: vkernel.SysRead, Args: [6]uint64{uint64(i), 0, 8}}
		res, err := w.Reserve(e.master, c, 0, []byte{byte(i)}, 8)
		if err != nil {
			t.Fatal(err)
		}
		res.Complete(e.master, uint64(i), 0, []byte{byte(i), byte(i)})
	}
	for i := 0; i < 50; i++ {
		ev, err := r.Next(e.slave)
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if ev.Args[0] != uint64(i) {
			t.Fatalf("entry %d out of order: %d", i, ev.Args[0])
		}
		in := ev.InPayload()
		if len(in) != 1 || in[0] != byte(i) {
			t.Fatalf("entry %d payload %v", i, in)
		}
		ret, _, out := ev.WaitResults(e.slave)
		if int(ret) != i || len(out) != 2 {
			t.Fatalf("entry %d results %d %v", i, ret, out)
		}
		ev.Consume()
	}
}

func TestErrnoReplication(t *testing.T) {
	e := newRBEnv(t, 1<<20, 1, nil)
	w := e.buf.NewWriter(0, e.mBase)
	r := e.buf.NewReader(0, 1, e.sBase)
	c := &vkernel.Call{Num: vkernel.SysRead, Args: [6]uint64{99, 0, 8}}
	res, _ := w.Reserve(e.master, c, 0, nil, 8)
	res.Complete(e.master, 0, vkernel.EBADF, nil)
	ev, _ := r.Next(e.slave)
	_, errno, _ := ev.WaitResults(e.slave)
	if errno != vkernel.EBADF {
		t.Fatalf("replicated errno = %v", errno)
	}
}

func TestNewValidation(t *testing.T) {
	seg := mem.NewSharedSegment(1, 4096)
	if _, err := New(seg, 0, 1, nil); err == nil {
		t.Fatal("accepted zero replicas")
	}
	if _, err := New(seg, 2, 0, nil); err == nil {
		t.Fatal("accepted zero partitions")
	}
	if _, err := New(seg, 2, 1000, nil); err == nil {
		t.Fatal("accepted partitions too small")
	}
}

func TestDrained(t *testing.T) {
	e := newRBEnv(t, 1<<20, 1, nil)
	w := e.buf.NewWriter(0, e.mBase)
	if !e.buf.Drained(0) {
		t.Fatal("empty buffer not drained")
	}
	res, _ := w.Reserve(e.master, &vkernel.Call{Num: vkernel.SysGetpid}, 0, nil, 0)
	res.Complete(e.master, 1, 0, nil)
	if e.buf.Drained(0) {
		t.Fatal("unconsumed entry reported drained")
	}
	r := e.buf.NewReader(0, 1, e.sBase)
	ev, _ := r.Next(e.slave)
	ev.WaitResults(e.slave)
	ev.Consume()
	if !e.buf.Drained(0) {
		t.Fatal("fully consumed buffer not drained")
	}
}

// TestPolicyVerRoundTrip: the policy snapshot version stamped by the
// writer travels with each entry and updates per entry — the transport
// the IP-MON stream-pinning protocol rides on.
func TestPolicyVerRoundTrip(t *testing.T) {
	e := newRBEnv(t, 1<<20, 1, nil)
	w := e.buf.NewWriter(0, e.mBase)
	r := e.buf.NewReader(0, 1, e.sBase)

	c := &vkernel.Call{Num: vkernel.SysGetpid}
	// Default stamp is 0 (no engine attached).
	res, err := w.Reserve(e.master, c, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	res.Complete(e.master, 1, 0, nil)
	w.SetPolicyVer(7)
	res, err = w.Reserve(e.master, c, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	res.Complete(e.master, 2, 0, nil)
	// The stamp is sticky until changed.
	res, err = w.Reserve(e.master, c, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	res.Complete(e.master, 3, 0, nil)

	for i, want := range []uint32{0, 7, 7} {
		ev, err := r.Next(e.slave)
		if err != nil {
			t.Fatal(err)
		}
		if ev.PolicyVer != want {
			t.Fatalf("entry %d: PolicyVer = %d, want %d", i, ev.PolicyVer, want)
		}
		ev.WaitResults(e.slave)
		ev.Consume()
	}
}
