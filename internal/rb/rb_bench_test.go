package rb

import (
	"testing"

	"remon/internal/mem"
	"remon/internal/vkernel"
)

// benchArbiter resets immediately: the bench loop consumes every entry
// before the next Reserve, so the partition is always drained.
type benchArbiter struct{}

func (benchArbiter) ResetPartition(b *Buffer, part int) { b.DoReset(part) }

func newBenchEnv(b *testing.B) *rbEnv {
	b.Helper()
	k := vkernel.New(nil)
	mp := k.NewProcess("master", 1, 0)
	sp := k.NewProcess("slave", 2, 1)
	mt := mp.NewThread(nil)
	st := sp.NewThread(nil)
	shmID := mt.RawSyscall(vkernel.SysShmget, 0, 1<<20, 0)
	if !shmID.Ok() {
		b.Fatalf("shmget: %v", shmID.Errno)
	}
	seg := k.ShmSegment(int(shmID.Val))
	mr := mt.RawSyscall(vkernel.SysShmat, shmID.Val, 0, 0)
	sr := st.RawSyscall(vkernel.SysShmat, shmID.Val, 0, 0)
	if !mr.Ok() || !sr.Ok() {
		b.Fatalf("shmat: %v / %v", mr.Errno, sr.Errno)
	}
	buf, err := New(seg, 2, 1, benchArbiter{})
	if err != nil {
		b.Fatal(err)
	}
	return &rbEnv{k: k, master: mt, slave: st, buf: buf,
		mBase: mem.Addr(mr.Val), sBase: mem.Addr(sr.Val)}
}

// BenchmarkPublishConsume measures the full RB round trip — Reserve,
// Complete, Next, WaitResults, Consume — for one entry with a 32-byte
// input and a 32-byte output payload. The allocs/op figure is the
// regression guard for the zero-copy fast path: steady state must not
// allocate (DESIGN.md §2).
func BenchmarkPublishConsume(b *testing.B) {
	e := newBenchEnv(b)
	w := e.buf.NewWriter(0, e.mBase)
	r := e.buf.NewReader(0, 1, e.sBase)
	c := &vkernel.Call{Num: vkernel.SysWrite, Args: [6]uint64{3, 0x1000, 32}}
	in := []byte("0123456789abcdef0123456789abcdef")
	out := []byte("fedcba9876543210fedcba9876543210")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := w.Reserve(e.master, c, 0, in, len(out))
		if err != nil {
			b.Fatal(err)
		}
		res.Complete(e.master, 32, 0, out)
		ev, err := r.Next(e.slave)
		if err != nil {
			b.Fatal(err)
		}
		if err := ev.CompareCall(e.slave, c, 0b001, in); err != nil {
			b.Fatal(err)
		}
		ret, _, _ := ev.WaitResults(e.slave)
		if ret != 32 {
			b.Fatal("bad result")
		}
		ev.Consume()
	}
}

// BenchmarkPublishOnly isolates the master-side path.
func BenchmarkPublishOnly(b *testing.B) {
	e := newBenchEnv(b)
	w := e.buf.NewWriter(0, e.mBase)
	r := e.buf.NewReader(0, 1, e.sBase)
	c := &vkernel.Call{Num: vkernel.SysGetpid}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := w.Reserve(e.master, c, 0, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		res.Complete(e.master, 1, 0, nil)
		ev, err := r.Next(e.slave)
		if err != nil {
			b.Fatal(err)
		}
		ev.WaitResults(e.slave)
		ev.Consume()
	}
}

// TestPublishConsumeSteadyStateAllocs pins the zero-allocation property
// down as a plain test so it fails loudly, not just in bench output.
func TestPublishConsumeSteadyStateAllocs(t *testing.T) {
	e := newRBEnv(t, 1<<20, 1, benchArbiter{})
	w := e.buf.NewWriter(0, e.mBase)
	r := e.buf.NewReader(0, 1, e.sBase)
	c := &vkernel.Call{Num: vkernel.SysWrite, Args: [6]uint64{3, 0x1000, 32}}
	in := []byte("0123456789abcdef0123456789abcdef")
	roundTrip := func() {
		res, err := w.Reserve(e.master, c, 0, in, 32)
		if err != nil {
			t.Fatal(err)
		}
		res.Complete(e.master, 32, 0, in)
		ev, err := r.Next(e.slave)
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.CompareCall(e.slave, c, 0b001, in); err != nil {
			t.Fatal(err)
		}
		ev.WaitResults(e.slave)
		ev.Consume()
	}
	roundTrip() // warm up cursors
	if avg := testing.AllocsPerRun(200, roundTrip); avg > 0.5 {
		t.Fatalf("RB round trip allocates %.1f objects/op, want 0", avg)
	}
}
