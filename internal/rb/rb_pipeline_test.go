package rb

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"remon/internal/mem"
	"remon/internal/vkernel"
)

// pipeEnv is an n-replica pipelined-buffer harness.
type pipeEnv struct {
	k       *vkernel.Kernel
	threads []*vkernel.Thread // [0] = master
	bases   []mem.Addr
	buf     *Buffer
}

func newPipeEnv(t *testing.T, segSize uint64, parts, replicas, maxLag int) *pipeEnv {
	t.Helper()
	k := vkernel.New(nil)
	e := &pipeEnv{k: k}
	var seg *mem.SharedSegment
	for i := 0; i < replicas; i++ {
		p := k.NewProcess(fmt.Sprintf("replica-%d", i), uint64(i+1), i)
		th := p.NewThread(nil)
		e.threads = append(e.threads, th)
		if i == 0 {
			r := th.RawSyscall(vkernel.SysShmget, 0, segSize, 0)
			if !r.Ok() {
				t.Fatalf("shmget: %v", r.Errno)
			}
			seg = k.ShmSegment(int(r.Val))
		}
		at := th.RawSyscall(vkernel.SysShmat, uint64(seg.ID), 0, 0)
		if !at.Ok() {
			t.Fatalf("shmat replica %d: %v", i, at.Errno)
		}
		e.bases = append(e.bases, mem.Addr(at.Val))
	}
	buf, err := New(seg, replicas, parts, &testArbiter{})
	if err != nil {
		t.Fatal(err)
	}
	buf.SetPipeline(maxLag)
	e.buf = buf
	return e
}

// reserveBatched stages one completed batched entry carrying i in arg0
// and a payload derived from it.
func reserveBatched(t *testing.T, w *Writer, th *vkernel.Thread, i int) {
	t.Helper()
	call := &vkernel.Call{Num: vkernel.SysGetpid, Args: [6]uint64{uint64(i)}}
	res, err := w.Reserve(th, call, FlagBatched|FlagMasterCall, nil, 16)
	if err != nil {
		t.Fatalf("entry %d: %v", i, err)
	}
	res.Complete(th, uint64(1000+i), 0, []byte(fmt.Sprintf("res-%04d", i)))
}

// drainOne consumes the next entry and checks its identity.
func drainOne(t *testing.T, r *Reader, th *vkernel.Thread, i int) {
	t.Helper()
	ev, err := r.Next(th)
	if err != nil {
		t.Fatalf("entry %d: %v", i, err)
	}
	if ev.Args[0] != uint64(i) {
		t.Fatalf("entry %d: arg0 = %d", i, ev.Args[0])
	}
	ret, errno, out := ev.WaitResults(th)
	if errno != 0 || ret != uint64(1000+i) {
		t.Fatalf("entry %d: ret=%d errno=%v", i, ret, errno)
	}
	if want := fmt.Sprintf("res-%04d", i); string(out) != want {
		t.Fatalf("entry %d: out=%q want %q", i, out, want)
	}
	ev.Consume()
}

// TestPipelineGroupCommit: batched entries stay unpublished until the
// group-commit size is reached or an explicit flush, and one
// writtenSeq release-store publishes the whole run.
func TestPipelineGroupCommit(t *testing.T) {
	e := newPipeEnv(t, 1<<20, 1, 2, 16) // K = DefaultGroupCommit = 8
	w := e.buf.NewWriter(0, e.bases[0])
	r := e.buf.NewReader(0, 1, e.bases[1])

	for i := 0; i < 3; i++ {
		reserveBatched(t, w, e.threads[0], i)
	}
	if ws := e.buf.WrittenSeq(0); ws != 0 {
		t.Fatalf("staged entries published early: writtenSeq=%d", ws)
	}
	w.Flush(e.threads[0])
	if ws := e.buf.WrittenSeq(0); ws != 3 {
		t.Fatalf("flush published %d, want 3", ws)
	}
	// Filling a full group commits automatically.
	for i := 3; i < 11; i++ {
		reserveBatched(t, w, e.threads[0], i)
	}
	if ws := e.buf.WrittenSeq(0); ws != 11 {
		t.Fatalf("group commit published %d, want 11", ws)
	}
	if n, err := r.NextRun(e.threads[1]); err != nil || n != 11 {
		t.Fatalf("NextRun = %d, %v; want 11", n, err)
	}
	for i := 0; i < 11; i++ {
		drainOne(t, r, e.threads[1], i)
	}
	if got := e.buf.ConsumedBy(0, 1); got != 11 {
		t.Fatalf("consumed counter = %d, want 11 (one store per drained run)", got)
	}
	st := e.buf.Stats()
	if st.Flushes < 2 || st.Batched != 11 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPipelineImmediatePublication: a non-batchable entry flushes the
// staged run first (publication order) and is visible before its
// results, exactly like the legacy protocol.
func TestPipelineImmediatePublication(t *testing.T) {
	e := newPipeEnv(t, 1<<20, 1, 2, 16)
	w := e.buf.NewWriter(0, e.bases[0])
	r := e.buf.NewReader(0, 1, e.bases[1])

	for i := 0; i < 2; i++ {
		reserveBatched(t, w, e.threads[0], i)
	}
	call := &vkernel.Call{Num: vkernel.SysRead, Args: [6]uint64{2}}
	res, err := w.Reserve(e.threads[0], call, FlagBlocking|FlagMasterCall, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The immediate entry and both staged ones are published, results
	// still pending.
	if ws := e.buf.WrittenSeq(0); ws != 3 {
		t.Fatalf("writtenSeq = %d, want 3", ws)
	}
	drainOne(t, r, e.threads[1], 0)
	drainOne(t, r, e.threads[1], 1)
	ev, err := r.Next(e.threads[1])
	if err != nil {
		t.Fatal(err)
	}
	if ev.Flags&FlagBatched != 0 {
		t.Fatal("immediate entry carries FlagBatched")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if ret, _, _ := ev.WaitResults(e.threads[1]); ret != 7 {
			t.Errorf("ret = %d", ret)
		}
	}()
	time.Sleep(2 * time.Millisecond) // let the slave park on the status futex
	res.Complete(e.threads[0], 7, 0, nil)
	<-done
	ev.Consume()
}

// TestPipelineDoubleBufferedFlip drives enough entries through a tiny
// partition that the writer flips halves repeatedly; readers must see
// every entry in order across generations, and the arbiter must never
// be involved.
func TestPipelineDoubleBufferedFlip(t *testing.T) {
	const n = 400
	// Tiny segment: the partition's halves hold only a few 128-byte
	// entries each.
	e := newPipeEnv(t, 4096, 1, 3, 8)
	w := e.buf.NewWriter(0, e.bases[0])

	var wg sync.WaitGroup
	for rep := 1; rep <= 2; rep++ {
		rep := rep
		r := e.buf.NewReader(0, rep, e.bases[rep])
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				drainOne(t, r, e.threads[rep], i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		reserveBatched(t, w, e.threads[0], i)
	}
	w.Flush(e.threads[0])
	wg.Wait()
	st := e.buf.Stats()
	if st.Flips == 0 {
		t.Fatalf("no double-buffered flips: %+v", st)
	}
}

// TestPipelineLagBound: the writer must stall at the lag window until
// slaves acknowledge consumption, and resume promptly when they do.
func TestPipelineLagBound(t *testing.T) {
	e := newPipeEnv(t, 1<<20, 1, 2, 4) // window of 4
	w := e.buf.NewWriter(0, e.bases[0])
	r := e.buf.NewReader(0, 1, e.bases[1])

	written := make(chan struct{})
	go func() {
		defer close(written)
		for i := 0; i < 10; i++ {
			reserveBatched(t, w, e.threads[0], i)
		}
		w.Flush(e.threads[0])
	}()
	select {
	case <-written:
		t.Fatal("writer ran 10 entries ahead through a 4-entry window")
	case <-time.After(20 * time.Millisecond):
	}
	for i := 0; i < 10; i++ {
		drainOne(t, r, e.threads[1], i)
	}
	<-written
	if st := e.buf.Stats(); st.LagWaits == 0 {
		t.Fatalf("no lag waits recorded: %+v", st)
	}
}

// TestPipelineWraparound forces the cumulative u32 sequence numbers past
// math.MaxUint32: readers, lag accounting and policy-version pinning
// must survive the wrap (offPolicyVer stamping is positional, so a
// version installed mid-wrap must surface exactly once at its entry).
func TestPipelineWraparound(t *testing.T) {
	const n = 300
	start := uint32(math.MaxUint32 - 40) // wraps inside the run
	e := newPipeEnv(t, 4096, 1, 3, 8)    // tiny halves: flips across the wrap too
	w := e.buf.NewWriter(0, e.bases[0])

	// Seed the cumulative counters as if the stream had been running
	// since just below the wrap point.
	base := e.buf.partBase(0)
	e.buf.seg.StoreU32(base+phWrittenSeq, start)
	e.buf.seg.StoreU32(base+halfStartOff(0), start)
	for rep := 1; rep <= 2; rep++ {
		e.buf.seg.StoreU32(base+phConsumed+uint64(rep)*4, start)
	}
	w.seq, w.completed, w.published, w.genStart = start, start, start, start

	const verSwitch = 100 // entry index at which the policy pin advances
	var wg sync.WaitGroup
	for rep := 1; rep <= 2; rep++ {
		rep := rep
		r := e.buf.NewReader(0, rep, e.bases[rep])
		r.seq = start
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				ev, err := r.Next(e.threads[rep])
				if err != nil {
					t.Errorf("replica %d entry %d: %v", rep, i, err)
					return
				}
				if ev.Args[0] != uint64(i) {
					t.Errorf("replica %d entry %d: arg0=%d", rep, i, ev.Args[0])
					return
				}
				wantVer := uint32(1)
				if i >= verSwitch {
					wantVer = 9
				}
				if ev.PolicyVer != wantVer {
					t.Errorf("replica %d entry %d: policyVer=%d want %d", rep, i, ev.PolicyVer, wantVer)
					return
				}
				ev.WaitResults(e.threads[rep])
				ev.Consume()
			}
		}()
	}
	w.SetPolicyVer(1)
	for i := 0; i < n; i++ {
		if i == verSwitch {
			w.SetPolicyVer(9)
		}
		reserveBatched(t, w, e.threads[0], i)
	}
	w.Flush(e.threads[0])
	wg.Wait()

	// The counters wrapped; wrap-safe lag accounting must report the
	// stream as fully drained.
	if lag := w.lag(); lag != 0 {
		t.Fatalf("post-drain lag = %d", lag)
	}
	wantSeq := start + uint32(n) // wrapped value
	if ws := e.buf.WrittenSeq(0); ws != wantSeq {
		t.Fatalf("writtenSeq = %d, want wrapped %d", ws, wantSeq)
	}
	if st := e.buf.Stats(); st.Flips == 0 {
		t.Fatalf("wraparound run never flipped: %+v", st)
	}
}

// TestWaitDrainedAbortChannel: the legacy arbiter wait must return
// promptly when the abort channel closes, without waiting for a drain
// that will never come.
func TestWaitDrainedAbortChannel(t *testing.T) {
	e := newRBEnv(t, 1<<20, 1, nil)
	w := e.buf.NewWriter(0, e.mBase)
	call := &vkernel.Call{Num: vkernel.SysGetpid}
	res, err := w.Reserve(e.master, call, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	res.Complete(e.master, 0, 0, nil)

	abort := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.buf.WaitDrained(0, abort) // slave never consumes
	}()
	time.Sleep(2 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("WaitDrained returned without drain or abort")
	default:
	}
	start := time.Now()
	close(abort)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitDrained ignored the abort channel")
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("abort took %v; want an event-driven return", el)
	}
}

// TestPipelineBarrierPublishesInFlight: a hard barrier (Flush) fired
// while a batched reservation is still in flight — the master being
// routed to the CP monitor mid-call — must publish that entry's
// arguments so the slave can mirror the stream; the late Complete must
// then wake the slave parked on the status word.
func TestPipelineBarrierPublishesInFlight(t *testing.T) {
	e := newPipeEnv(t, 1<<20, 1, 2, 16)
	w := e.buf.NewWriter(0, e.bases[0])
	r := e.buf.NewReader(0, 1, e.bases[1])

	call := &vkernel.Call{Num: vkernel.SysGetpid, Args: [6]uint64{42}}
	res, err := w.Reserve(e.threads[0], call, FlagBatched, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Barrier before Complete (e.g. the invalid-token fallback).
	w.Flush(e.threads[0])
	if ws := e.buf.WrittenSeq(0); ws != 1 {
		t.Fatalf("barrier flush published %d entries, want the in-flight reservation", ws)
	}
	ev, err := r.Next(e.threads[1])
	if err != nil {
		t.Fatal(err)
	}
	if ev.Args[0] != 42 {
		t.Fatalf("arg0 = %d", ev.Args[0])
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if ret, _, _ := ev.WaitResults(e.threads[1]); ret != 7 {
			t.Errorf("ret = %d", ret)
		}
	}()
	time.Sleep(2 * time.Millisecond) // let the slave park on the status futex
	res.Complete(e.threads[0], 7, 0, nil)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("slave never woke from the late completion")
	}
	ev.Consume()
}
