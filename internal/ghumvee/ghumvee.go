// Package ghumvee implements the cross-process (CP) monitor of ReMon: a
// ptrace-style lockstep monitor in the GHUMVEE lineage (§2, §3). It
// supervises N diversified replicas, suspends them at monitored system
// call entries, deep-compares their arguments, lets only the master
// perform externally visible calls, replicates results to the slaves,
// defers asynchronous signals to equivalent states, rejects bidirectional
// shared memory, and arbitrates IP-MON's replication buffer resets.
//
// GHUMVEE can run standalone (every call monitored — the "no IP-MON"
// baseline of Figures 3–5) or as ReMon's CP half behind IK-B.
//
// The rendezvous engine (DESIGN.md §7) is a lock-free arrival ring per
// logical-thread group: replicas publish arrivals through the internal/mem
// atomic word API, the last arrival closes the round and acts as the
// monitor, waiters spin briefly and then park on per-slot channels that
// are woken individually (no broadcast herd), and each group re-arms one
// pooled watchdog timer instead of allocating a fresh one per call.
package ghumvee

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"remon/internal/fdmap"
	"remon/internal/mem"
	"remon/internal/model"
	"remon/internal/rb"
	"remon/internal/sysdesc"
	"remon/internal/vkernel"
)

// DefaultLockstepTimeout is the rendezvous watchdog default: if a
// lockstep group stays incomplete this long (host wall-clock) the replica
// set is declared desynchronised. It must comfortably exceed any
// legitimate blocking wait in the benchmarks. The timeout is per-monitor
// state (SetLockstepTimeout) — concurrent MVEEs, as a fleet creates, can
// run different watchdogs without racing on a package global.
const DefaultLockstepTimeout = 10 * time.Second

// DefaultEpochSize is the epoch window benchmarks and servers opt into
// with SetEpochSize / core.Config.EpochSize. The monitor itself defaults
// to immediate verification (window of 1) so that divergent batchable
// calls are rejected before execution, exactly as the pre-epoch engine
// did.
const DefaultEpochSize = 8

// Replica is one supervised variant.
type Replica struct {
	Index int
	Proc  *vkernel.Process
}

// Verdict describes how a run ended from the monitor's point of view.
type Verdict struct {
	Diverged bool
	Reason   string
	// Syscall is the call at which divergence was detected (if any).
	Syscall string
}

// Stats counts monitor activity.
type Stats struct {
	MonitoredCalls  uint64 // lockstep rendezvous performed
	MasterCalls     uint64 // calls executed by master only
	AllReplicaCalls uint64 // calls executed by every replica
	PtraceStops     uint64 // tracer stops charged
	BytesCompared   uint64 // cross-process argument bytes compared
	BytesReplicated uint64 // cross-process result bytes copied
	SignalsDeferred uint64
	ShmRejected     uint64
	RBResets        uint64
	Divergences     uint64
	// Wakeups counts targeted waiter wakes issued by round monitors (the
	// engine suppresses wakes for waiters still spinning).
	Wakeups uint64
	// EpochBatched counts monitored calls whose argument verification was
	// deferred to an epoch boundary; EpochFlushes counts boundary passes
	// over non-empty windows.
	EpochBatched uint64
	EpochFlushes uint64
}

// Emit reports the snapshot as (metric, value) pairs under the
// telemetry naming convention ("_total" marks cumulative counters).
// Plain func signature so this package never imports the registry.
func (s Stats) Emit(emit func(name string, v uint64)) {
	emit("monitored_calls_total", s.MonitoredCalls)
	emit("master_calls_total", s.MasterCalls)
	emit("all_replica_calls_total", s.AllReplicaCalls)
	emit("ptrace_stops_total", s.PtraceStops)
	emit("bytes_compared_total", s.BytesCompared)
	emit("bytes_replicated_total", s.BytesReplicated)
	emit("signals_deferred_total", s.SignalsDeferred)
	emit("shm_rejected_total", s.ShmRejected)
	emit("rb_resets_total", s.RBResets)
	emit("divergences_total", s.Divergences)
	emit("wakeups_total", s.Wakeups)
	emit("epoch_batched_total", s.EpochBatched)
	emit("epoch_flushes_total", s.EpochFlushes)
}

// atomicStats is the hot-path counter block; Stats() snapshots it.
type atomicStats struct {
	monitoredCalls  atomic.Uint64
	masterCalls     atomic.Uint64
	allReplicaCalls atomic.Uint64
	ptraceStops     atomic.Uint64
	bytesCompared   atomic.Uint64
	bytesReplicated atomic.Uint64
	signalsDeferred atomic.Uint64
	shmRejected     atomic.Uint64
	rbResets        atomic.Uint64
	divergences     atomic.Uint64
	wakeups         atomic.Uint64
	epochBatched    atomic.Uint64
	epochFlushes    atomic.Uint64
}

// Monitor is the CP monitor instance for one replica set.
type Monitor struct {
	Kernel *vkernel.Kernel

	// Immutable after New: the replica set and the process index. Hot
	// paths read them without locks.
	replicas []*Replica
	byProc   map[*vkernel.Process]*Replica

	ltids  sync.Map // *vkernel.Thread -> *ring (the thread's lockstep group)
	groups sync.Map // ltid int -> *ring

	fileMap *fdmap.FileMap
	shadow  *fdmap.EpollShadow

	// Hot-path state: halted flags, watchdog duration, epoch window size
	// and the abort channel waiters select on.
	diverged  atomic.Bool
	stopped   atomic.Bool
	lockstep  atomic.Int64 // rendezvous watchdog, ns
	epochSize atomic.Int32 // verification window (1 = immediate)
	abort     chan struct{}
	abortOnce sync.Once

	at       atomicStats
	pendingN atomic.Int32 // len(pending) mirror for the fast path

	mu        sync.Mutex // cold state below
	rbuf      *rb.Buffer
	allowShm  bool // raised while GHUMVEE itself arbitrates RB setup (§3.5)
	verdict   Verdict
	onVerdict func(Verdict)
	pending   []int // deferred signals (§2.2, §3.8)
}

// New creates a monitor supervising the given replica processes
// (replicas[0] is the master).
func New(k *vkernel.Kernel, procs []*vkernel.Process) *Monitor {
	m := &Monitor{
		Kernel:  k,
		byProc:  map[*vkernel.Process]*Replica{},
		fileMap: fdmap.New(mem.NewSharedSegment(-1, fdmap.MapSize)),
		shadow:  fdmap.NewEpollShadow(len(procs)),
		abort:   make(chan struct{}),
	}
	m.lockstep.Store(int64(DefaultLockstepTimeout))
	m.epochSize.Store(1)
	for i, p := range procs {
		r := &Replica{Index: i, Proc: p}
		p.ReplicaIndex = i
		m.replicas = append(m.replicas, r)
		m.byProc[p] = r
		p.SetSignalGate(m.gateSignal)
	}
	k.AddExitHandler(m)
	return m
}

// Replicas returns the supervised replica set.
func (m *Monitor) Replicas() []*Replica {
	return append([]*Replica(nil), m.replicas...)
}

// FileMap exposes the monitor-maintained descriptor metadata (§3.6).
func (m *Monitor) FileMap() *fdmap.FileMap { return m.fileMap }

// EpollShadow exposes the fd<->cookie translation table (§3.9).
func (m *Monitor) EpollShadow() *fdmap.EpollShadow { return m.shadow }

// AttachRB wires the replication buffer so the monitor can arbitrate
// resets and raise the signals-pending flag (§3.2, §3.8).
func (m *Monitor) AttachRB(b *rb.Buffer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rbuf = b
}

// SetAllowShm temporarily permits shared-memory calls (GHUMVEE arbitrates
// the RB and file-map setup itself, §3.5).
func (m *Monitor) SetAllowShm(v bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.allowShm = v
}

// RegisterThread binds a replica thread to its logical thread id. Threads
// with equal ltids across replicas form one lockstep group; the ring is
// resolved here once so the lockstep fast path needs a single map load.
func (m *Monitor) RegisterThread(t *vkernel.Thread, ltid int) {
	m.ltids.Store(t, m.group(ltid))
}

// Stats returns a snapshot of the counters. Pending epoch windows are
// verified first so that deferred divergences are reflected.
func (m *Monitor) Stats() Stats {
	m.flushEpochs()
	return Stats{
		MonitoredCalls:  m.at.monitoredCalls.Load(),
		MasterCalls:     m.at.masterCalls.Load(),
		AllReplicaCalls: m.at.allReplicaCalls.Load(),
		PtraceStops:     m.at.ptraceStops.Load(),
		BytesCompared:   m.at.bytesCompared.Load(),
		BytesReplicated: m.at.bytesReplicated.Load(),
		SignalsDeferred: m.at.signalsDeferred.Load(),
		ShmRejected:     m.at.shmRejected.Load(),
		RBResets:        m.at.rbResets.Load(),
		Divergences:     m.at.divergences.Load(),
		Wakeups:         m.at.wakeups.Load(),
		EpochBatched:    m.at.epochBatched.Load(),
		EpochFlushes:    m.at.epochFlushes.Load(),
	}
}

// Verdict returns the current verdict, forcing an epoch boundary first so
// a divergence sitting in an unverified window is not missed.
func (m *Monitor) Verdict() Verdict {
	m.flushEpochs()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.verdict
}

// Diverged reports whether divergence was detected (epoch windows are
// verified first).
func (m *Monitor) Diverged() bool {
	m.flushEpochs()
	return m.diverged.Load()
}

// SetLockstepTimeout adjusts this monitor's rendezvous watchdog (0 is
// ignored; the default stays).
func (m *Monitor) SetLockstepTimeout(d time.Duration) {
	if d <= 0 {
		return
	}
	m.lockstep.Store(int64(d))
}

// LockstepTimeout reports the monitor's rendezvous watchdog.
func (m *Monitor) LockstepTimeout() time.Duration {
	return time.Duration(m.lockstep.Load())
}

// SetEpochSize sets the divergence-checking window: consecutive batchable
// monitored calls (read-only, non-blocking, non-sensitive — see
// DESIGN.md §7) accumulate and are verified together at epoch boundaries.
// n <= 1 selects immediate verification (the default). Blocking and
// sensitive calls always verify immediately and force a boundary.
func (m *Monitor) SetEpochSize(n int) {
	if n < 1 {
		n = 1
	}
	m.epochSize.Store(int32(n))
}

// EpochSize reports the current verification window.
func (m *Monitor) EpochSize() int { return int(m.epochSize.Load()) }

// SetVerdictHandler registers a callback fired exactly once, when (and
// if) the monitor declares divergence. Fleet supervisors hang their
// quarantine path off it. The callback runs on the declaring goroutine
// after the replica set has been torn down; it must not call back into
// the monitor's lockstep machinery.
func (m *Monitor) SetVerdictHandler(fn func(Verdict)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onVerdict = fn
}

// halted reports whether lockstep processing should bail out — either a
// divergence verdict or an administrative Stop.
func (m *Monitor) halted() bool {
	return m.diverged.Load() || m.stopped.Load()
}

// signalAbort wakes every parked rendezvous waiter, exactly once.
func (m *Monitor) signalAbort() {
	m.abortOnce.Do(func() { close(m.abort) })
}

// Stop tears the replica set down administratively — the fleet layer's
// shard retirement path (drain complete, rolling restart, fleet
// shutdown). The reason lands in the thread crash records so a retired
// shard's post-mortem shows why. Unlike declareDivergence it records no
// verdict: replica crashes triggered by the teardown are expected, not
// an attack signal. Idempotent; safe concurrently with running replicas.
func (m *Monitor) Stop(reason string) {
	if reason == "" {
		reason = "administrative teardown"
	}
	m.mu.Lock()
	if m.stopped.Load() || m.diverged.Load() {
		m.mu.Unlock()
		return
	}
	m.stopped.Store(true)
	m.mu.Unlock()

	m.signalAbort()
	for _, r := range m.replicas {
		for _, t := range r.Proc.Threads() {
			t.Crash("mvee stop: " + reason)
		}
	}
}

// Stopped reports whether Stop was called.
func (m *Monitor) Stopped() bool { return m.stopped.Load() }

// group returns (creating on first use) the arrival ring for ltid.
func (m *Monitor) group(ltid int) *ring {
	if v, ok := m.groups.Load(ltid); ok {
		return v.(*ring)
	}
	g := newRing(m, len(m.replicas))
	if v, loaded := m.groups.LoadOrStore(ltid, g); loaded {
		g.timer.Stop()
		return v.(*ring)
	}
	return g
}

// replicaOf resolves the replica a thread belongs to.
func (m *Monitor) replicaOf(t *vkernel.Thread) *Replica {
	return m.byProc[t.Proc]
}

// ringOf resolves a thread's arrival ring (unregistered threads join
// group 0, matching the old engine's default ltid).
func (m *Monitor) ringOf(t *vkernel.Thread) *ring {
	if v, ok := m.ltids.Load(t); ok {
		return v.(*ring)
	}
	return m.group(0)
}

// MonitorCall is the lockstep path: every replica's thread for the same
// logical call arrives here; the last arrival acts as the monitor.
func (m *Monitor) MonitorCall(t *vkernel.Thread, c *vkernel.Call, exec func(*vkernel.Call) vkernel.Result) vkernel.Result {
	if m.halted() {
		return vkernel.Result{Errno: vkernel.EPERM}
	}
	rep := m.byProc[t.Proc]
	if rep == nil {
		// Not a supervised process (monitor used standalone on a foreign
		// thread): execute directly.
		return exec(c)
	}

	// Syscall-entry ptrace stop (§2: tracer stops cost two context
	// switches each).
	t.Clock.Advance(model.CostPtraceStop)
	m.at.ptraceStops.Add(1)

	g := m.ringOf(t)
	slot := &g.slots[rep.Index]
	a := &slot.arr
	a.t, a.c, a.exec = t, c, exec
	a.runOwn = false
	a.result = vkernel.Result{}
	slot.seq++
	r := slot.seq
	// The AddU32 read-modify-write publishes the slot's plain writes to
	// whichever arrival ends up as this round's monitor.
	if int(g.seg.AddU32(ringCntOff, 1)) < g.n {
		// Wait for the rest of the lockstep group. A replica that never
		// shows up (it was hijacked into a different syscall sequence, or
		// wedged) trips the rendezvous watchdog, armed by the first
		// waiter that outlives its spin budget — real GHUMVEE uses the
		// same timeout-based desynchronisation detection.
		if !g.awaitDone(m, slot, rep.Index, r) {
			return vkernel.Result{Errno: vkernel.EPERM}
		}
		result := a.result
		if a.runOwn {
			result = exec(c)
		}
		t.Clock.Advance(model.CostPtraceStop) // syscall-exit stop
		return result
	}

	// Last arrival: the round is closed (everyone showed up — the
	// watchdog stands down even if the master call blocks); act as the
	// monitor for this round.
	g.closed.Store(r)
	for i := range g.slots {
		g.collect[i] = &g.slots[i].arr
	}
	m.monitorRound(g, g.collect)
	g.completeRound(m, r, rep.Index)

	// The monitor goroutine doubles as this replica's thread.
	result := a.result
	if a.runOwn {
		result = exec(c)
	}
	t.Clock.Advance(model.CostPtraceStop)
	return result
}

// monitorRound performs one lockstep round: clock sync, comparison (or
// epoch capture), execution, replication, signal delivery.
func (m *Monitor) monitorRound(g *ring, arrivals []*arrival) {
	master := arrivals[0]
	c := master.c
	d := sysdesc.Lookup(c.Num)

	// Lockstep: all replicas stop until the monitor has seen all of them
	// — their clocks meet at the latest arrival, plus the monitor's
	// serialized handling of each replica's stop (one monitor process
	// services N tracees in turn).
	maxT := model.Duration(0)
	for _, a := range arrivals {
		if now := a.t.Clock.Now(); now > maxT {
			maxT = now
		}
	}
	maxT += model.Duration(len(arrivals)) * model.CostMonitorDispatch
	for _, a := range arrivals {
		a.t.Clock.SyncTo(maxT)
	}

	m.at.monitoredCalls.Add(1)

	// Syscall-number equivalence is always checked immediately: capturing
	// a slave's arguments under the master's descriptor would read the
	// wrong memory.
	for _, a := range arrivals[1:] {
		if a.c.Num != master.c.Num {
			m.flushGroup(g)
			m.declareDivergence(c, fmt.Sprintf("replica %d invoked %s, master invoked %s",
				m.replicaOf(a.t).Index, vkernel.SyscallName(a.c.Num), vkernel.SyscallName(master.c.Num)))
			failRound(arrivals)
			return
		}
	}

	if m.epochSize.Load() > 1 && batchableCall(d) {
		// Epoch path: capture (with the immediate path's exact virtual
		// charges) now, verify at the boundary.
		if !m.epochCapture(g, arrivals, d) {
			failRound(arrivals)
			return
		}
	} else {
		// Boundary: a blocking or sensitive call verifies only after the
		// pending window has been cleared, preserving first-divergence
		// ordering.
		m.flushGroup(g)
		if m.halted() {
			failRound(arrivals)
			return
		}
		if err := m.compareArgs(arrivals, d); err != nil {
			m.declareDivergence(c, err.Error())
			failRound(arrivals)
			return
		}
	}

	// Policy interventions the CP monitor owns regardless of level.
	if d != nil && d.Special == sysdesc.SpecShm && !m.shmAllowed() {
		// §2.1: reject shared memory that could form unmonitored
		// bidirectional channels.
		m.at.shmRejected.Add(1)
		failRound(arrivals)
		return
	}

	if d != nil && d.Exec == sysdesc.AllReplicas {
		m.at.allReplicaCalls.Add(1)
		for _, a := range arrivals {
			a.runOwn = true
		}
		m.deliverDeferredSignals()
		return
	}

	// Master-call: execute in the master, replicate to slaves.
	m.at.masterCalls.Add(1)

	if d != nil && d.Special == sysdesc.SpecEpollCtl {
		m.recordEpollCookies(arrivals)
	}

	res := master.exec(c)
	for _, a := range arrivals {
		a.result = res
	}

	// Slaves' clocks ride the master's completion (lockstep: nobody
	// proceeds before the monitor resumes them).
	done := master.t.Clock.Now()
	for _, a := range arrivals[1:] {
		a.t.Clock.SyncTo(done)
	}

	if res.Ok() {
		m.replicateResults(arrivals, d, res)
		m.trackFDs(master, d, res)
	}
	m.deliverDeferredSignals()
}

// failRound marks every arrival rejected (EPERM).
func failRound(arrivals []*arrival) {
	for _, a := range arrivals {
		a.result = vkernel.Result{Errno: vkernel.EPERM}
	}
}

func (m *Monitor) shmAllowed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.allowShm
}

// compareArgs deep-compares the replicas' call arguments (the monitor's
// equivalence check; §1 "checking their arguments for equivalence").
func (m *Monitor) compareArgs(arrivals []*arrival, d *sysdesc.Desc) error {
	master := arrivals[0]
	if d == nil {
		// Conservative: compare raw registers.
		for _, a := range arrivals[1:] {
			for i := 0; i < 6; i++ {
				if a.c.Args[i] != master.c.Args[i] {
					return fmt.Errorf("%s: raw arg%d mismatch", vkernel.SyscallName(master.c.Num), i)
				}
			}
		}
		return nil
	}
	for i := 0; i < d.NArgs; i++ {
		spec := d.Args[i]
		switch spec.Type {
		case sysdesc.ArgInt, sysdesc.ArgFD:
			for _, a := range arrivals[1:] {
				a.t.Clock.Advance(model.CostMonitorCompare)
				if a.c.Args[i] != master.c.Args[i] {
					return fmt.Errorf("%s: arg%d %d != master %d",
						d.Name, i, a.c.Args[i], master.c.Args[i])
				}
			}
		case sysdesc.ArgPtrOpaque, sysdesc.ArgOutBuf:
			// Diversified addresses: only NULL/non-NULL equivalence.
			for _, a := range arrivals[1:] {
				if (a.c.Args[i] == 0) != (master.c.Args[i] == 0) {
					return fmt.Errorf("%s: arg%d NULL-ness differs", d.Name, i)
				}
			}
		case sysdesc.ArgPath:
			ms, err := readCString(master.t.Proc.Mem, mem.Addr(master.c.Args[i]))
			if err != nil {
				return fmt.Errorf("%s: master path arg%d unreadable", d.Name, i)
			}
			for _, a := range arrivals[1:] {
				ss, err := readCString(a.t.Proc.Mem, mem.Addr(a.c.Args[i]))
				if err != nil {
					return fmt.Errorf("%s: replica path arg%d unreadable", d.Name, i)
				}
				m.chargeCompare(a.t, len(ms))
				if ss != ms {
					return fmt.Errorf("%s: path %q != master %q", d.Name, ss, ms)
				}
			}
		case sysdesc.ArgInBuf, sysdesc.ArgInOutBuf:
			size := d.InBufSize(i, master.c)
			if size == 0 || master.c.Args[i] == 0 {
				continue
			}
			// §3.9: epoll_event carries a replica-specific pointer cookie
			// in its data field; only the events mask is comparable.
			if d.Special == sysdesc.SpecEpollCtl && size > 8 {
				size = 8
			}
			mbuf, err := master.t.Proc.Mem.ReadBytes(mem.Addr(master.c.Args[i]), size)
			if err != nil {
				return fmt.Errorf("%s: master buffer arg%d unreadable", d.Name, i)
			}
			for _, a := range arrivals[1:] {
				sbuf, err := a.t.Proc.Mem.ReadBytes(mem.Addr(a.c.Args[i]), size)
				if err != nil {
					return fmt.Errorf("%s: replica buffer arg%d unreadable", d.Name, i)
				}
				m.chargeCompare(a.t, size)
				for j := range mbuf {
					if mbuf[j] != sbuf[j] {
						return fmt.Errorf("%s: buffer arg%d differs at byte %d", d.Name, i, j)
					}
				}
			}
		case sysdesc.ArgIovec:
			// Gather each replica's iovec contents and compare.
			mdata, err := gatherIovec(master.t, master.c, i, spec.LenArg)
			if err != nil {
				return err
			}
			for _, a := range arrivals[1:] {
				sdata, err := gatherIovec(a.t, a.c, i, spec.LenArg)
				if err != nil {
					return err
				}
				m.chargeCompare(a.t, len(mdata))
				if len(mdata) != len(sdata) {
					return fmt.Errorf("%s: iovec size differs", d.Name)
				}
				for j := range mdata {
					if mdata[j] != sdata[j] {
						return fmt.Errorf("%s: iovec content differs", d.Name)
					}
				}
			}
		}
	}
	return nil
}

func (m *Monitor) chargeCompare(t *vkernel.Thread, n int) {
	t.Clock.Advance(model.CrossCopyCost(n))
	m.at.bytesCompared.Add(uint64(n))
}

// replicateResults copies the master's output buffers into each slave's
// memory (process_vm_writev style) and translates epoll cookies.
func (m *Monitor) replicateResults(arrivals []*arrival, d *sysdesc.Desc, res vkernel.Result) {
	if d == nil {
		return
	}
	master := arrivals[0]
	if d.Special == sysdesc.SpecEpollWait {
		m.replicateEpollEvents(arrivals, res)
		return
	}
	for i := 0; i < d.NArgs; i++ {
		spec := d.Args[i]
		if spec.Type != sysdesc.ArgOutBuf && spec.Type != sysdesc.ArgInOutBuf {
			continue
		}
		if master.c.Args[i] == 0 {
			continue
		}
		var payload []byte
		if spec.Rule == sysdesc.SizeCString {
			s, err := readCString(master.t.Proc.Mem, mem.Addr(master.c.Args[i]))
			if err != nil {
				continue
			}
			payload = append([]byte(s), 0)
		} else {
			size := d.OutBufSize(i, master.c, res.Val, res.Ok())
			if size == 0 {
				continue
			}
			buf, err := master.t.Proc.Mem.ReadBytes(mem.Addr(master.c.Args[i]), size)
			if err != nil {
				continue
			}
			payload = buf
		}
		for _, a := range arrivals[1:] {
			if a.c.Args[i] == 0 {
				continue
			}
			if err := a.t.Proc.Mem.Write(mem.Addr(a.c.Args[i]), payload); err == nil {
				a.t.Clock.Advance(model.CrossCopyCost(len(payload)))
				m.at.bytesReplicated.Add(uint64(len(payload)))
			}
		}
	}
}

// trackFDs refreshes the file map after descriptor-changing calls (§3.6).
func (m *Monitor) trackFDs(master *arrival, d *sysdesc.Desc, res vkernel.Result) {
	if d == nil {
		return
	}
	proc := master.t.Proc
	switch {
	case d.FDClosing:
		m.fileMap.Clear(int(master.c.Args[0]))
	case d.FDCreating:
		fd := int(res.Val)
		// dup2/dup3 return the target fd; pipe writes two fds into memory.
		if d.Nr == vkernel.SysPipe || d.Nr == vkernel.SysPipe2 ||
			d.Nr == vkernel.SysSocketpair {
			// Read the fd pair from master memory.
			addrIdx := 0
			if d.Nr == vkernel.SysSocketpair {
				addrIdx = 3
			}
			raw, err := proc.Mem.ReadBytes(mem.Addr(master.c.Args[addrIdx]), 8)
			if err != nil {
				return
			}
			fd1 := int(uint32(raw[0]) | uint32(raw[1])<<8 | uint32(raw[2])<<16 | uint32(raw[3])<<24)
			fd2 := int(uint32(raw[4]) | uint32(raw[5])<<8 | uint32(raw[6])<<16 | uint32(raw[7])<<24)
			m.recordFD(proc, fd1)
			m.recordFD(proc, fd2)
			return
		}
		m.recordFD(proc, fd)
	case d.Nr == vkernel.SysFcntl && master.c.Args[1] == vkernel.FSetFL:
		typ, _, open := m.fileMap.Lookup(int(master.c.Args[0]))
		if open {
			m.fileMap.Set(int(master.c.Args[0]), typ, master.c.Args[2]&vkernel.ONonblock != 0)
		}
	case d.Nr == vkernel.SysIoctl && master.c.Args[1] == vkernel.FIONBIO:
		typ, _, open := m.fileMap.Lookup(int(master.c.Args[0]))
		if open {
			m.fileMap.Set(int(master.c.Args[0]), typ, master.c.Args[2] != 0)
		}
	case d.Nr == vkernel.SysListen:
		// The socket became a listener; type byte stays "socket".
		m.recordFD(proc, int(master.c.Args[0]))
	}
}

func (m *Monitor) recordFD(proc *vkernel.Process, fd int) {
	f, errno := proc.FDs().Get(fd)
	if errno != vkernel.OK {
		return
	}
	special := f.Kind == vkernel.FDSpecial
	m.fileMap.Set(fd, fdmap.TypeFromKind(f.Kind, special), f.Nonblock())
}

// recordEpollCookies reads each replica's epoll_event struct and registers
// the fd<->cookie pair in the shadow map (§3.9).
func (m *Monitor) recordEpollCookies(arrivals []*arrival) {
	for _, a := range arrivals {
		rep := m.replicaOf(a.t)
		op := int(a.c.Args[1])
		fd := int(a.c.Args[2])
		switch op {
		case vkernel.EpollCtlAdd, vkernel.EpollCtlMod:
			raw, err := a.t.Proc.Mem.ReadBytes(mem.Addr(a.c.Args[3]), vkernel.EpollEventSize)
			if err != nil {
				continue
			}
			cookie := uint64(raw[8]) | uint64(raw[9])<<8 | uint64(raw[10])<<16 |
				uint64(raw[11])<<24 | uint64(raw[12])<<32 | uint64(raw[13])<<40 |
				uint64(raw[14])<<48 | uint64(raw[15])<<56
			m.shadow.Register(rep.Index, fd, cookie)
		case vkernel.EpollCtlDel:
			m.shadow.Unregister(rep.Index, fd)
		}
	}
}

// replicateEpollEvents translates the master's returned events for each
// slave: master cookie -> fd -> slave cookie (§3.9).
func (m *Monitor) replicateEpollEvents(arrivals []*arrival, res vkernel.Result) {
	master := arrivals[0]
	n := int(res.Val)
	if n <= 0 {
		return
	}
	raw, err := master.t.Proc.Mem.ReadBytes(mem.Addr(master.c.Args[1]), n*vkernel.EpollEventSize)
	if err != nil {
		return
	}
	for _, a := range arrivals[1:] {
		rep := m.replicaOf(a.t)
		out := make([]byte, len(raw))
		copy(out, raw)
		for e := 0; e < n; e++ {
			off := e*vkernel.EpollEventSize + 8
			cookie := uint64(raw[off]) | uint64(raw[off+1])<<8 | uint64(raw[off+2])<<16 |
				uint64(raw[off+3])<<24 | uint64(raw[off+4])<<32 | uint64(raw[off+5])<<40 |
				uint64(raw[off+6])<<48 | uint64(raw[off+7])<<56
			if fd, ok := m.shadow.FDForCookie(0, cookie); ok {
				if sc, ok := m.shadow.CookieForFD(rep.Index, fd); ok {
					out[off] = byte(sc)
					out[off+1] = byte(sc >> 8)
					out[off+2] = byte(sc >> 16)
					out[off+3] = byte(sc >> 24)
					out[off+4] = byte(sc >> 32)
					out[off+5] = byte(sc >> 40)
					out[off+6] = byte(sc >> 48)
					out[off+7] = byte(sc >> 56)
				}
			}
		}
		if err := a.t.Proc.Mem.Write(mem.Addr(a.c.Args[1]), out); err == nil {
			a.t.Clock.Advance(model.CrossCopyCost(len(out)))
			m.at.bytesReplicated.Add(uint64(len(out)))
		}
	}
}

// gateSignal is the kernel's signal delivery gate: the monitor discards
// the initial delivery and re-initiates it at the next equivalent state
// (§2.2). It also raises the RB signals-pending flag so a master running
// ahead through IP-MON re-enters monitored execution (§3.8).
func (m *Monitor) gateSignal(p *vkernel.Process, sig int) bool {
	rep := m.byProc[p]
	if rep == nil {
		return false
	}
	if rep.Index != 0 {
		// Outside-world signals target the master; a signal directed at a
		// slave is simply absorbed and re-delivered consistently.
		return true
	}
	m.mu.Lock()
	m.pending = append(m.pending, sig)
	m.pendingN.Store(int32(len(m.pending)))
	rbuf := m.rbuf
	m.mu.Unlock()
	m.at.signalsDeferred.Add(1)
	if rbuf != nil {
		rbuf.SetSignalsPending(true)
	}
	return true
}

// deliverDeferredSignals re-initiates deferred signals at a rendezvous —
// the point where all replicas rest in equivalent states. Delivery is an
// epoch boundary for every group: all pending windows are verified first
// so signals only land on states the monitor has vouched for.
func (m *Monitor) deliverDeferredSignals() {
	if m.pendingN.Load() == 0 {
		return
	}
	m.flushEpochs()
	m.mu.Lock()
	if len(m.pending) == 0 {
		m.mu.Unlock()
		return
	}
	sigs := m.pending
	m.pending = nil
	m.pendingN.Store(0)
	rbuf := m.rbuf
	m.mu.Unlock()
	if rbuf != nil {
		rbuf.SetSignalsPending(false)
	}
	for _, sig := range sigs {
		for _, r := range m.replicas {
			r.Proc.QueueSignalDirect(sig)
		}
	}
}

// PendingSignals reports how many deferred signals await delivery.
func (m *Monitor) PendingSignals() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// declareDivergence records the verdict and tears the replica set down —
// "in case of divergence, execution is terminated to limit the effects of
// an attack" (§1).
func (m *Monitor) declareDivergence(c *vkernel.Call, reason string) {
	m.mu.Lock()
	if m.diverged.Load() || m.stopped.Load() {
		// Already handled — or an administrative Stop is tearing the set
		// down, in which case crashes are expected and not an attack.
		m.mu.Unlock()
		return
	}
	m.diverged.Store(true)
	m.at.divergences.Add(1)
	name := ""
	if c != nil {
		name = vkernel.SyscallName(c.Num)
	}
	m.verdict = Verdict{Diverged: true, Reason: reason, Syscall: name}
	verdict := m.verdict
	notify := m.onVerdict
	m.mu.Unlock()

	m.signalAbort()
	for _, r := range m.replicas {
		for _, t := range r.Proc.Threads() {
			t.Crash("mvee shutdown: " + reason)
		}
	}
	if notify != nil {
		notify(verdict)
	}
}

// ThreadExited implements vkernel.ExitHandler: an abnormal replica exit —
// including IP-MON's intentional crash on argument mismatch (§3.3) — is a
// divergence signal. Pending epoch windows are verified first so that a
// deferred argument divergence, not the crash it may have provoked, is
// reported as the root cause.
func (m *Monitor) ThreadExited(t *vkernel.Thread, code int, crashed bool) {
	if !crashed {
		return
	}
	rep := m.byProc[t.Proc]
	if rep == nil || m.diverged.Load() {
		return
	}
	m.flushEpochs()
	m.declareDivergence(t.LastSyscall(), fmt.Sprintf("replica %d crashed (ptrace-stop SIGSEGV)", rep.Index))
}

// ApproveRegistration implements ikb.RegistrationApprover (§3.5):
// GHUMVEE may veto or shrink IP-MON's unmonitored-call set. The default
// policy accepts any mask from a healthy replica set.
func (m *Monitor) ApproveRegistration(p *vkernel.Process, mask *vkernel.SyscallMask) bool {
	return !m.halted()
}

// ResetPartition implements rb.Arbiter (§3.2): wait until every slave has
// drained the partition, then reset it. The wait is driven by the RB's
// drain notification, and teardown (divergence or administrative Stop)
// interrupts it through the monitor's abort channel — both signalAbort
// paths close it, so the old halted() polling is gone. Never invoked
// under the double-buffered pipeline (writers flip halves themselves).
func (m *Monitor) ResetPartition(b *rb.Buffer, part int) {
	b.WaitDrained(part, m.abort)
	b.DoReset(part)
	m.at.rbResets.Add(1)
}

// readCString reads a NUL-terminated string (max 4 KiB) from as.
func readCString(as *mem.AddressSpace, a mem.Addr) (string, error) {
	var out []byte
	var one [1]byte
	for len(out) < 4096 {
		if err := as.Read(a+mem.Addr(len(out)), one[:]); err != nil {
			return "", err
		}
		if one[0] == 0 {
			return string(out), nil
		}
		out = append(out, one[0])
	}
	return string(out), nil
}

// gatherIovec concatenates the buffer contents described by an iovec
// argument.
func gatherIovec(t *vkernel.Thread, c *vkernel.Call, argIdx, cntIdx int) ([]byte, error) {
	cnt := 1
	if cntIdx >= 0 {
		cnt = int(c.Args[cntIdx])
	}
	if cnt < 0 || cnt > 1024 {
		return nil, fmt.Errorf("ghumvee: iovec count %d out of range", cnt)
	}
	raw, err := t.Proc.Mem.ReadBytes(mem.Addr(c.Args[argIdx]), cnt*16)
	if err != nil {
		return nil, fmt.Errorf("ghumvee: iovec unreadable: %w", err)
	}
	var out []byte
	for i := 0; i < cnt; i++ {
		base := uint64(raw[i*16]) | uint64(raw[i*16+1])<<8 | uint64(raw[i*16+2])<<16 |
			uint64(raw[i*16+3])<<24 | uint64(raw[i*16+4])<<32 | uint64(raw[i*16+5])<<40 |
			uint64(raw[i*16+6])<<48 | uint64(raw[i*16+7])<<56
		length := uint64(raw[i*16+8]) | uint64(raw[i*16+9])<<8 | uint64(raw[i*16+10])<<16 |
			uint64(raw[i*16+11])<<24
		if length > 1<<22 {
			length = 1 << 22
		}
		buf, err := t.Proc.Mem.ReadBytes(mem.Addr(base), int(length))
		if err != nil {
			return nil, fmt.Errorf("ghumvee: iovec buffer unreadable: %w", err)
		}
		out = append(out, buf...)
	}
	return out, nil
}
