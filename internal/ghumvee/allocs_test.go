//go:build !race

package ghumvee

import (
	"testing"

	"remon/internal/vkernel"
)

// TestMonitorCallSteadyStateAllocs pins the fix for the per-call watchdog
// timer allocation (and the per-round arrival/map churn that rode along):
// once a lockstep group is warm, a monitored round must allocate nothing
// — the pooled group timer is re-armed, arrival slots are reused, and
// stats are atomic counters. Guarded out under -race (the detector's
// instrumentation allocates).
func TestMonitorCallSteadyStateAllocs(t *testing.T) {
	e := newMonEnv(t, 2)
	const n = 2
	start := make([]chan struct{}, n)
	done := make([]chan struct{}, n)
	for i := 0; i < n; i++ {
		start[i] = make(chan struct{})
		done[i] = make(chan struct{})
		th := e.threads[i]
		c := &vkernel.Call{Num: vkernel.SysGetpid}
		exec := func(cc *vkernel.Call) vkernel.Result { return th.RawSyscallC(cc) }
		go func(i int) {
			for range start[i] {
				if r := e.m.MonitorCall(th, c, exec); !r.Ok() {
					panic("monitored getpid failed")
				}
				done[i] <- struct{}{}
			}
		}(i)
	}
	round := func() {
		for i := 0; i < n; i++ {
			start[i] <- struct{}{}
		}
		for i := 0; i < n; i++ {
			<-done[i]
		}
	}
	for i := 0; i < 50; i++ { // warm-up: group ring, sync.Map entries
		round()
	}
	if avg := testing.AllocsPerRun(200, round); avg != 0 {
		t.Fatalf("steady-state monitored round allocates %.2f objects/round, want 0", avg)
	}
	for i := 0; i < n; i++ {
		close(start[i])
	}
}
