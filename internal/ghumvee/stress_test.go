package ghumvee

import (
	"sync"
	"testing"
	"time"

	"remon/internal/vkernel"
)

// TestRendezvousStress is the satellite's -race stress: 8 replicas x 16
// logical threads x mixed blocking-class/non-blocking calls, run under
// both verification engines (immediate reference and epoch-batched), with
// a golden comparison of verdicts, per-thread call ordering and the
// monitor's byte accounting. goldenRun (epoch_test.go) drives the
// workload; this test scales it up to the contended shape.
func TestRendezvousStress(t *testing.T) {
	replicas, groups, calls := 8, 16, 10
	if testing.Short() {
		replicas, groups, calls = 4, 8, 6
	}
	refTraces, refClocks, refStats, refVerdict := goldenRun(t, replicas, groups, calls, 1)
	batTraces, batClocks, batStats, batVerdict := goldenRun(t, replicas, groups, calls, DefaultEpochSize)

	if refVerdict.Diverged {
		t.Fatalf("reference engine diverged: %+v", refVerdict)
	}
	if batVerdict != refVerdict {
		t.Fatalf("verdicts differ: ref=%+v batched=%+v", refVerdict, batVerdict)
	}
	// Per-thread call ordering and results must match the reference run
	// exactly.
	for i := range refTraces {
		if len(refTraces[i]) == 0 {
			t.Fatalf("thread %d issued no calls", i)
		}
		for j := range refTraces[i] {
			if refTraces[i][j] != batTraces[i][j] {
				t.Fatalf("thread %d call %d: ref=%d batched=%d", i, j, refTraces[i][j], batTraces[i][j])
			}
		}
	}
	for i := range refClocks {
		if refClocks[i] != batClocks[i] {
			t.Fatalf("thread %d clock: ref=%d batched=%d", i, refClocks[i], batClocks[i])
		}
	}
	if refStats.BytesCompared != batStats.BytesCompared ||
		refStats.BytesReplicated != batStats.BytesReplicated ||
		refStats.MonitoredCalls != batStats.MonitoredCalls {
		t.Fatalf("stats differ: ref=%+v batched=%+v", refStats, batStats)
	}
}

// TestTargetedWakeOnSlowArrival forces the park path: the first arrival
// outspins its budget while the second shows up late, so the round's
// monitor must issue a targeted wake (counted in Stats.Wakeups).
func TestTargetedWakeOnSlowArrival(t *testing.T) {
	e := newMonEnv(t, 2)
	done := make(chan vkernel.Result, 1)
	go func() {
		th := e.threads[0]
		done <- e.m.MonitorCall(th, &vkernel.Call{Num: vkernel.SysGetpid},
			func(c *vkernel.Call) vkernel.Result { return th.RawSyscallC(c) })
	}()
	time.Sleep(20 * time.Millisecond) // let the early arrival park
	th := e.threads[1]
	r2 := e.m.MonitorCall(th, &vkernel.Call{Num: vkernel.SysGetpid},
		func(c *vkernel.Call) vkernel.Result { return th.RawSyscallC(c) })
	r1 := <-done
	if !r1.Ok() || !r2.Ok() || r1.Val != r2.Val {
		t.Fatalf("results: %+v %+v", r1, r2)
	}
	if st := e.m.Stats(); st.Wakeups != 1 {
		t.Fatalf("Wakeups = %d, want 1 targeted wake", st.Wakeups)
	}
}

// TestStressDivergenceUnderLoad injects a single divergent batchable call
// after healthy traffic and checks both engines converge on a divergence
// verdict naming that call, with identical reason strings.
func TestStressDivergenceUnderLoad(t *testing.T) {
	var verdicts []Verdict
	for _, epoch := range []int{1, DefaultEpochSize} {
		e := newMonEnv(t, 4)
		e.m.SetEpochSize(epoch)
		healthy := make([]*vkernel.Call, 4)
		for r := range healthy {
			healthy[r] = &vkernel.Call{Num: vkernel.SysGetpid}
		}
		for i := 0; i < 5; i++ {
			if res := e.lockstep(t, healthy); !res[0].Ok() {
				t.Fatalf("epoch=%d healthy round %d failed: %+v", epoch, i, res[0])
			}
		}
		divergent := make([]*vkernel.Call, 4)
		for r := range divergent {
			divergent[r] = &vkernel.Call{Num: vkernel.SysLseek, Args: [6]uint64{3, uint64(10 + r%2), 0}}
		}
		e.lockstep(t, divergent)
		if !e.m.Diverged() {
			t.Fatalf("epoch=%d: divergence missed", epoch)
		}
		verdicts = append(verdicts, e.m.Verdict())
	}
	if verdicts[0] != verdicts[1] {
		t.Fatalf("verdicts differ across engines: %+v vs %+v", verdicts[0], verdicts[1])
	}
	if verdicts[0].Syscall != "lseek" {
		t.Fatalf("verdict = %+v", verdicts[0])
	}
}

// TestWatchdogSparesBlockingMasterCall: once every replica has arrived,
// the round is closed and the watchdog must stand down even when the
// master call blocks far beyond the lockstep timeout (an idle accept or
// epoll_wait) — only an unclosed round (a replica that never showed up)
// is desynchronisation.
func TestWatchdogSparesBlockingMasterCall(t *testing.T) {
	e := newMonEnv(t, 2)
	e.m.SetLockstepTimeout(30 * time.Millisecond)
	release := make(chan struct{})
	results := make([]vkernel.Result, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			th := e.threads[i]
			results[i] = e.m.MonitorCall(th, &vkernel.Call{Num: vkernel.SysGetpid},
				func(c *vkernel.Call) vkernel.Result {
					if th.Proc.ReplicaIndex == 0 {
						<-release // master call blocks well past the watchdog
					}
					return th.RawSyscallC(c)
				})
		}(i)
	}
	time.Sleep(150 * time.Millisecond) // 5x the timeout
	if e.m.Diverged() {
		t.Fatalf("watchdog fired on a closed round with a blocking master call: %+v", e.m.Verdict())
	}
	close(release)
	wg.Wait()
	if e.m.Diverged() {
		t.Fatalf("diverged after completion: %+v", e.m.Verdict())
	}
	if !results[0].Ok() || results[0].Val != results[1].Val {
		t.Fatalf("results: %+v", results)
	}
}
