package ghumvee

import (
	"sync"
	"testing"

	"remon/internal/vkernel"
)

// TestEpochBatchedDivergenceAtBoundary: with batching enabled, a
// divergent batchable call executes (verification is deferred) but the
// next boundary — here, the external verdict read — reports exactly the
// divergence the immediate engine would have.
func TestEpochBatchedDivergenceAtBoundary(t *testing.T) {
	e := newMonEnv(t, 2)
	e.m.SetEpochSize(4)
	calls := []*vkernel.Call{
		{Num: vkernel.SysLseek, Args: [6]uint64{3, 100, 0}},
		{Num: vkernel.SysLseek, Args: [6]uint64{3, 999, 0}}, // divergent offset
	}
	res := e.lockstep(t, calls)
	// Deferred verification: the round completed (EBADF from the raw
	// kernel — fd 3 is not open — not the monitor's EPERM rejection).
	for _, r := range res {
		if r.Errno == vkernel.EPERM {
			t.Fatalf("batched call rejected pre-boundary: %+v", res)
		}
	}
	if !e.m.Diverged() { // boundary: flushes the window
		t.Fatal("deferred divergence not detected at boundary")
	}
	v := e.m.Verdict()
	if v.Syscall != "lseek" || v.Reason != "lseek: arg1 999 != master 100" {
		t.Fatalf("verdict = %+v, want the immediate engine's exact reason", v)
	}
}

// TestEpochFlushOnSensitiveCall: a sensitive call forces the boundary
// before its own verification, so the earlier deferred divergence wins
// and the sensitive call never executes.
func TestEpochFlushOnSensitiveCall(t *testing.T) {
	e := newMonEnv(t, 2)
	e.m.SetEpochSize(8)
	e.k.FS.WriteFile("/tmp/flush", nil, 0o644)
	e.lockstep(t, []*vkernel.Call{
		{Num: vkernel.SysLseek, Args: [6]uint64{3, 1, 0}},
		{Num: vkernel.SysLseek, Args: [6]uint64{3, 2, 0}}, // deferred divergence
	})
	// write is sensitive (SOCKET/NONSOCKET_RW class): boundary first.
	wres := e.lockstep(t, []*vkernel.Call{
		{Num: vkernel.SysWrite, Args: [6]uint64{1, uint64(e.put(0, []byte("x"))), 1}},
		{Num: vkernel.SysWrite, Args: [6]uint64{1, uint64(e.put(1, []byte("x"))), 1}},
	})
	for _, r := range wres {
		if r.Errno != vkernel.EPERM {
			t.Fatalf("sensitive call after deferred divergence = %+v, want EPERM", wres)
		}
	}
	if v := e.m.Verdict(); v.Syscall != "lseek" {
		t.Fatalf("verdict attributes %q, want the earlier lseek", v.Syscall)
	}
}

// TestEpochWindowFullFlush: the call that fills the window is verified
// before it executes, like the immediate path.
func TestEpochWindowFullFlush(t *testing.T) {
	e := newMonEnv(t, 2)
	e.m.SetEpochSize(2)
	e.lockstep(t, []*vkernel.Call{{Num: vkernel.SysGetpid}, {Num: vkernel.SysGetpid}})
	res := e.lockstep(t, []*vkernel.Call{
		{Num: vkernel.SysLseek, Args: [6]uint64{3, 7, 0}},
		{Num: vkernel.SysLseek, Args: [6]uint64{3, 8, 0}},
	})
	for _, r := range res {
		if r.Errno != vkernel.EPERM {
			t.Fatalf("window-filling divergent call executed: %+v", res)
		}
	}
	if st := e.m.Stats(); st.EpochFlushes == 0 || st.EpochBatched != 2 {
		t.Fatalf("epoch stats = %+v", st)
	}
}

// TestEpochStatsHealthy: batching counts calls and flushes without
// changing verdicts on healthy runs.
func TestEpochStatsHealthy(t *testing.T) {
	e := newMonEnv(t, 2)
	e.m.SetEpochSize(3)
	for i := 0; i < 7; i++ {
		res := e.lockstep(t, []*vkernel.Call{{Num: vkernel.SysGetpid}, {Num: vkernel.SysGetpid}})
		if !res[0].Ok() || res[0].Val != res[1].Val {
			t.Fatalf("call %d: %+v", i, res)
		}
	}
	st := e.m.Stats() // forces the final partial-window flush
	if e.m.Diverged() {
		t.Fatalf("healthy batched run diverged: %+v", e.m.Verdict())
	}
	if st.EpochBatched != 7 {
		t.Fatalf("EpochBatched = %d, want 7", st.EpochBatched)
	}
	if st.EpochFlushes < 2 {
		t.Fatalf("EpochFlushes = %d, want >= 2 (two full windows)", st.EpochFlushes)
	}
}

// goldenRun drives one deterministic mixed workload (per-group files,
// batchable reads and metadata calls, sensitive writes, an all-replicas
// call) on a fresh monitor and returns per-thread result traces, final
// clocks and stats.
func goldenRun(t *testing.T, replicas, groups, callsPerThread, epoch int) ([][]int64, []int64, Stats, Verdict) {
	t.Helper()
	e := newMonEnv(t, replicas)
	e.m.SetEpochSize(epoch)

	// One extra registered thread set per group beyond ltid 0.
	type lane struct {
		threads []*vkernel.Thread
		bufs    []uint64 // per-replica scratch, pre-allocated (alloc is not goroutine-safe)
	}
	lanes := make([]*lane, groups)
	paths := make([][]uint64, groups)
	for g := 0; g < groups; g++ {
		ln := &lane{}
		paths[g] = make([]uint64, replicas)
		for r := 0; r < replicas; r++ {
			var th *vkernel.Thread
			if g == 0 {
				th = e.threads[r]
			} else {
				th = e.threads[r].Proc.NewThread(nil)
				e.m.RegisterThread(th, g)
			}
			ln.threads = append(ln.threads, th)
			ln.bufs = append(ln.bufs, uint64(e.alloc(r, 256)))
		}
		lanes[g] = ln
	}
	// Deterministic setup phase: create one file per group and record the
	// path bytes in every replica, sequentially so fd numbers and results
	// do not depend on host scheduling.
	fds := make([]uint64, groups)
	for g := 0; g < groups; g++ {
		name := "/tmp/golden-" + string(rune('a'+g%26)) + string(rune('0'+g/26))
		e.k.FS.WriteFile(name, []byte("golden-seed-content"), 0o644)
		for r := 0; r < replicas; r++ {
			paths[g][r] = uint64(e.put(r, append([]byte(name), 0)))
		}
		calls := make([]*vkernel.Call, replicas)
		results := make([]vkernel.Result, replicas)
		var wg sync.WaitGroup
		for r := 0; r < replicas; r++ {
			calls[r] = &vkernel.Call{Num: vkernel.SysOpen, Args: [6]uint64{paths[g][r], vkernel.ORdwr, 0}}
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				th := lanes[g].threads[r]
				results[r] = e.m.MonitorCall(th, calls[r], func(c *vkernel.Call) vkernel.Result {
					return th.RawSyscallC(c)
				})
			}(r)
		}
		wg.Wait()
		if !results[0].Ok() {
			t.Fatalf("group %d open failed: %+v", g, results[0])
		}
		fds[g] = results[0].Val
	}

	// Concurrent mixed phase: every group's threads run the same call
	// script against group-private state.
	traces := make([][]int64, groups*replicas)
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		for r := 0; r < replicas; r++ {
			wg.Add(1)
			go func(g, r int) {
				defer wg.Done()
				th := lanes[g].threads[r]
				buf := lanes[g].bufs[r]
				exec := func(c *vkernel.Call) vkernel.Result { return th.RawSyscallC(c) }
				var trace []int64
				do := func(c *vkernel.Call) {
					trace = append(trace, e.m.MonitorCall(th, c, exec).Ret())
				}
				for i := 0; i < callsPerThread; i++ {
					do(&vkernel.Call{Num: vkernel.SysGetpid})
					do(&vkernel.Call{Num: vkernel.SysLseek, Args: [6]uint64{fds[g], uint64(i % 8), 0}})
					do(&vkernel.Call{Num: vkernel.SysAccess, Args: [6]uint64{paths[g][r], 0}})
					do(&vkernel.Call{Num: vkernel.SysFstat, Args: [6]uint64{fds[g], buf}})
					if i%3 == 0 { // sensitive: epoch boundary + replication
						do(&vkernel.Call{Num: vkernel.SysPread64, Args: [6]uint64{fds[g], buf, 8, 0}})
					}
					if i%5 == 0 { // all-replicas call (runOwn path)
						do(&vkernel.Call{Num: vkernel.SysRtSigprocmask, Args: [6]uint64{0, 0}})
					}
				}
				traces[g*replicas+r] = trace
			}(g, r)
		}
	}
	wg.Wait()

	clocks := make([]int64, 0, groups*replicas)
	for g := 0; g < groups; g++ {
		for r := 0; r < replicas; r++ {
			clocks = append(clocks, int64(lanes[g].threads[r].Clock.Now()))
		}
	}
	return traces, clocks, e.m.Stats(), e.m.Verdict()
}

// TestEpochGoldenEquivalence is the bit-identical invariant: the same
// healthy workload run under immediate verification (the reference
// engine semantics) and under epoch batching must produce identical
// per-thread result traces, identical final virtual clocks, identical
// comparison/replication byte counts, and identical (non-)verdicts.
func TestEpochGoldenEquivalence(t *testing.T) {
	replicas, groups, calls := 3, 4, 12
	if testing.Short() {
		replicas, groups, calls = 2, 2, 6
	}
	refTraces, refClocks, refStats, refVerdict := goldenRun(t, replicas, groups, calls, 1)
	batTraces, batClocks, batStats, batVerdict := goldenRun(t, replicas, groups, calls, DefaultEpochSize)

	if refVerdict.Diverged || batVerdict.Diverged {
		t.Fatalf("healthy runs diverged: ref=%+v bat=%+v", refVerdict, batVerdict)
	}
	for i := range refTraces {
		if len(refTraces[i]) != len(batTraces[i]) {
			t.Fatalf("thread %d trace length differs: %d vs %d", i, len(refTraces[i]), len(batTraces[i]))
		}
		for j := range refTraces[i] {
			if refTraces[i][j] != batTraces[i][j] {
				t.Fatalf("thread %d call %d: ref=%d batched=%d", i, j, refTraces[i][j], batTraces[i][j])
			}
		}
	}
	for i := range refClocks {
		if refClocks[i] != batClocks[i] {
			t.Fatalf("thread %d final clock: ref=%d batched=%d (virtual time must be bit-identical)",
				i, refClocks[i], batClocks[i])
		}
	}
	type cmp struct {
		name     string
		ref, bat uint64
	}
	for _, c := range []cmp{
		{"MonitoredCalls", refStats.MonitoredCalls, batStats.MonitoredCalls},
		{"MasterCalls", refStats.MasterCalls, batStats.MasterCalls},
		{"AllReplicaCalls", refStats.AllReplicaCalls, batStats.AllReplicaCalls},
		{"PtraceStops", refStats.PtraceStops, batStats.PtraceStops},
		{"BytesCompared", refStats.BytesCompared, batStats.BytesCompared},
		{"BytesReplicated", refStats.BytesReplicated, batStats.BytesReplicated},
		{"Divergences", refStats.Divergences, batStats.Divergences},
	} {
		if c.ref != c.bat {
			t.Fatalf("%s differs: ref=%d batched=%d", c.name, c.ref, c.bat)
		}
	}
	if batStats.EpochBatched == 0 {
		t.Fatal("batched run never deferred a verification")
	}
}
