package ghumvee

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"remon/internal/mem"
	"remon/internal/vkernel"
)

// The arrival ring is one logical-thread group's lockstep meeting point,
// built on the internal/mem atomic word API instead of a mutex+broadcast
// condition variable (DESIGN.md §7).
//
// Shared-segment layout (one 64-byte stripe per word keeps the hot words
// on separate cache lines):
//
//	off 0:            arrival counter (AddU32; last arrival closes the
//	                  round and becomes the monitor)
//	off 64*(i+1):     slot i done sequence (release-store publishing
//	                  the slot's result)
//
// Protocol per round r (a per-slot monotone sequence; all slots agree
// because each replica contributes exactly one thread per group):
//
//  1. Replica i fills slots[i].arr with plain writes, then joins the
//     arrival counter — the AddU32 read-modify-write is the release
//     that publishes the slot's record.
//  2. If the counter is still short of n, the replica spins briefly on
//     doneSeq(i), then parks on its private wake channel (or the
//     monitor-wide abort channel).
//  3. The arrival that brings the counter to n observes — through the
//     counter's read-modify-write ordering — every slot's published
//     record, runs the monitor round, resets the counter, release-stores
//     each doneSeq and wakes only the slots that actually parked.
const (
	ringSlotStride = 64
	ringCntOff     = 0

	// spinArrival bounds the pre-park spin: lockstep rounds on a loaded
	// group complete in well under a microsecond of host time, so most
	// waits never touch the scheduler (§3.7's spin-then-futex strategy,
	// applied to the CP monitor).
	spinArrival = 128
)

func doneOff(i int) uint64 { return uint64(ringSlotStride * (i + 1)) }

// arrival is one replica thread's published rendezvous record.
type arrival struct {
	t      *vkernel.Thread
	c      *vkernel.Call
	exec   func(*vkernel.Call) vkernel.Result
	runOwn bool
	result vkernel.Result
}

// ringSlot is one replica's lane in the group.
type ringSlot struct {
	arr    arrival
	seq    uint64 // local round counter, owned by the arriving thread
	parked atomic.Uint32
	wake   chan struct{} // cap 1; tokens are absorbed by the recheck loop
}

// ring is the lock-free rendezvous for one logical-thread group.
type ring struct {
	n       int
	seg     *mem.SharedSegment
	slots   []ringSlot
	collect []*arrival // monitor-of-round scratch (only the closer touches it)

	// closed is the last round whose arrivals all showed up, set by the
	// closing arrival before it runs the monitor round. An armed watchdog
	// for a closed round stands down: the round is executing (possibly
	// blocking legitimately inside the master call), not wedged.
	closed atomic.Uint64

	// Pooled watchdog: one timer per group, re-armed by the first waiter
	// of each round, disarmed when the round completes. armedCall is the
	// arming waiter's call (immutable once issued) so the timeout verdict
	// can cite it without touching the waiter's slot.
	timer      *time.Timer
	armedRound atomic.Uint64
	armedCall  atomic.Pointer[vkernel.Call]

	// Epoch window (epoch.go). winMu guards only window mutation and
	// flushing — never the arrival fast path. capArena backs the window
	// entries' per-replica captures; both recycle their storage at every
	// flush, so steady-state batching of register-only calls allocates
	// nothing.
	winMu    sync.Mutex
	window   []epochEntry
	capArena []capturedArgs
}

func newRing(m *Monitor, n int) *ring {
	g := &ring{
		n:       n,
		seg:     mem.NewSharedSegment(-1, uint64(ringSlotStride*(n+1))),
		slots:   make([]ringSlot, n),
		collect: make([]*arrival, n),
	}
	for i := range g.slots {
		g.slots[i].wake = make(chan struct{}, 1)
	}
	g.timer = time.AfterFunc(time.Hour, func() { g.watchdogFire(m) })
	g.timer.Stop()
	return g
}

// armWatchdog re-arms the group's pooled timer for round r. Only the
// first waiter of a round pays the Reset; later waiters see armedRound
// already current. The timer callback revalidates against completed, so
// a stale or spurious fire is harmless.
func (g *ring) armWatchdog(m *Monitor, r uint64, c *vkernel.Call) {
	g.armedCall.Store(c)
	prev := g.armedRound.Load()
	if prev == r || !g.armedRound.CompareAndSwap(prev, r) {
		return
	}
	g.timer.Reset(m.LockstepTimeout())
}

// watchdogFire runs in the timer goroutine when a round has been armed
// for longer than the lockstep timeout. A replica that never showed up
// (hijacked into a different syscall sequence, or wedged) leaves the
// round unclosed — the same timeout-based desynchronisation detection
// real GHUMVEE uses. A closed round (every replica arrived) is exempt:
// its monitor may legitimately block inside the master call for longer
// than the timeout (an idle accept or epoll_wait), exactly as the old
// engine's stale-arrival check allowed.
func (g *ring) watchdogFire(m *Monitor) {
	r := g.armedRound.Load()
	if r == 0 || g.closed.Load() >= r || m.halted() {
		return
	}
	c := g.armedCall.Load()
	m.flushEpochs() // attribute an earlier deferred divergence first
	m.declareDivergence(c, "lockstep rendezvous timeout (replica desynchronised)")
}

// awaitDone blocks slot idx until its round-r result is published. It
// spins briefly, then parks on the slot's wake channel; false means the
// monitor halted (divergence or Stop) before the round completed.
func (g *ring) awaitDone(m *Monitor, slot *ringSlot, idx int, r uint64) bool {
	off := doneOff(idx)
	want := uint32(r)
	for i := 0; i < spinArrival; i++ {
		if g.seg.LoadU32(off) == want {
			return true
		}
		if i&15 == 15 {
			runtime.Gosched()
		}
	}
	// Spin budget exhausted: this round might be wedged — arm the pooled
	// watchdog before sleeping. Rounds that complete within the spin
	// window (the overwhelmingly common case) never touch the timer.
	g.armWatchdog(m, r, slot.arr.c)
	for {
		slot.parked.Store(1)
		if g.seg.LoadU32(off) == want {
			// Result arrived between the spin and the park; a wake token
			// the monitor may have raced in stays buffered and is
			// absorbed by a later recheck.
			slot.parked.Store(0)
			return true
		}
		select {
		case <-slot.wake:
		case <-m.abort:
			// Prefer a published result over the abort (the old engine's
			// "done wins over halted" ordering).
			return g.seg.LoadU32(off) == want
		}
		if g.seg.LoadU32(off) == want {
			return true
		}
		if m.halted() {
			return false
		}
	}
}

// completeRound publishes round r's results and reopens the ring. Called
// by the round's monitor (the closing arrival) only.
func (g *ring) completeRound(m *Monitor, r uint64, self int) {
	if g.armedRound.Load() == r {
		g.timer.Stop()
	}
	// Reopen the arrival counter before any waiter is released: a woken
	// waiter may immediately start the next round.
	g.seg.StoreU32(ringCntOff, 0)
	for i := range g.slots {
		if i == self {
			continue
		}
		g.seg.StoreU32(doneOff(i), uint32(r)) // release: publish arr.result
		s := &g.slots[i]
		if s.parked.Swap(0) == 1 {
			m.at.wakeups.Add(1)
			select {
			case s.wake <- struct{}{}:
			default:
			}
		}
	}
}
