package ghumvee

// Epoch-batched divergence checking (DESIGN.md §7): consecutive
// *batchable* monitored calls — non-blocking, non-sensitive, read-only by
// the internal/policy level classification — have their argument
// verification deferred. The round still captures every comparable
// argument (and applies the immediate path's exact virtual-time charges
// and BytesCompared accounting, keeping the virtual metrics bit-identical
// to immediate verification), but the cross-replica equality pass runs
// once per epoch window instead of once per call.
//
// Boundaries that force a flush, in all cases before anything depends on
// the window's verdict:
//
//   - the window reaching the configured epoch size;
//   - a non-batchable (blocking / sensitive / undescribed) call arriving
//     in the group;
//   - deferred signal delivery;
//   - a replica crash or the rendezvous watchdog firing (so the deferred
//     divergence, not its downstream crash, is reported as root cause);
//   - any external verdict read (Diverged / Verdict / Stats).
//
// Verification order inside a window is arrival order, and inside an
// entry it mirrors compareArgs exactly, so the first divergence reported
// — reason string and syscall — matches what the immediate engine would
// have produced.

import (
	"bytes"
	"fmt"

	"remon/internal/mem"
	"remon/internal/model"
	"remon/internal/policy"
	"remon/internal/sysdesc"
	"remon/internal/vkernel"
)

// batchableCall reports whether a monitored call's verification may be
// deferred to an epoch boundary. The policy layer supplies the spatial
// classification (read-only call sets of BASE_LEVEL and
// NONSOCKET_RO_LEVEL); the descriptor supplies the safety guards: no
// special handling, no descriptor lifecycle effects, never blocking.
func batchableCall(d *sysdesc.Desc) bool {
	return d != nil && d.Special == sysdesc.SpecNone &&
		!d.FDCreating && !d.FDClosing && d.BlockFD < 0 &&
		policy.Batchable(d.Nr)
}

// capturedBuf is one deep-compared argument's bytes, captured at round
// time (replica memory may be reused the moment the round completes).
type capturedBuf struct {
	arg  int
	data []byte
}

// capturedArgs is one replica's captured view of a call.
type capturedArgs struct {
	regs [6]uint64
	deep []capturedBuf
}

func (c *capturedArgs) deepAt(arg int) []byte {
	for i := range c.deep {
		if c.deep[i].arg == arg {
			return c.deep[i].data
		}
	}
	return nil
}

// epochEntry is one deferred round in a group's window.
type epochEntry struct {
	c    *vkernel.Call // master's call (verdict attribution)
	d    *sysdesc.Desc
	caps []capturedArgs // per replica, master first
}

// epochCapture captures the round's comparable arguments into the group
// window, charging virtual time exactly as compareArgs would. It returns
// false when the round must fail (capture error → divergence, or a full
// window flushed and found a divergence — including possibly this
// entry's, in which case the call has not executed, matching the
// immediate path).
func (m *Monitor) epochCapture(g *ring, arrivals []*arrival, d *sysdesc.Desc) bool {
	// Carve this entry's captures out of the ring's arena (recycled at
	// every flush; only the group's serialized round monitor and flushers
	// touch it, under winMu).
	g.winMu.Lock()
	base := len(g.capArena)
	need := base + len(arrivals)
	if cap(g.capArena) < need {
		grown := make([]capturedArgs, len(g.capArena), 2*need)
		copy(grown, g.capArena)
		g.capArena = grown
	}
	g.capArena = g.capArena[:need]
	caps := g.capArena[base:need:need]
	for i := range caps {
		caps[i].deep = caps[i].deep[:0] // keep capacity across flushes
	}
	err := m.captureArgs(arrivals, d, caps)
	if err != nil {
		g.capArena = g.capArena[:base]
		g.winMu.Unlock()
		// Unreadable argument memory is a divergence today; earlier
		// window entries are verified first for root-cause order.
		m.flushGroup(g)
		m.declareDivergence(arrivals[0].c, err.Error())
		return false
	}
	m.at.epochBatched.Add(1)
	g.window = append(g.window, epochEntry{c: arrivals[0].c, d: d, caps: caps})
	full := len(g.window) >= int(m.epochSize.Load())
	g.winMu.Unlock()
	if full {
		m.flushGroup(g)
		if m.halted() {
			return false
		}
	}
	return true
}

// captureArgs reads every comparable argument of every replica into caps
// (len(arrivals) entries, deep slices pre-reset), applying the same clock
// charges and BytesCompared accounting as compareArgs. It must stay
// charge-for-charge identical to compareArgs on healthy rounds — that is
// the bit-identical-virtual-metrics invariant.
func (m *Monitor) captureArgs(arrivals []*arrival, d *sysdesc.Desc, caps []capturedArgs) error {
	for idx, a := range arrivals {
		caps[idx].regs = a.c.Args
	}
	master := arrivals[0]
	for i := 0; i < d.NArgs; i++ {
		spec := d.Args[i]
		switch spec.Type {
		case sysdesc.ArgInt, sysdesc.ArgFD:
			for _, a := range arrivals[1:] {
				a.t.Clock.Advance(model.CostMonitorCompare)
			}
		case sysdesc.ArgPtrOpaque, sysdesc.ArgOutBuf:
			// Register capture suffices (NULL-ness only).
		case sysdesc.ArgPath:
			ms, err := readCString(master.t.Proc.Mem, mem.Addr(master.c.Args[i]))
			if err != nil {
				return fmt.Errorf("%s: master path arg%d unreadable", d.Name, i)
			}
			caps[0].deep = append(caps[0].deep, capturedBuf{arg: i, data: []byte(ms)})
			for k, a := range arrivals[1:] {
				ss, err := readCString(a.t.Proc.Mem, mem.Addr(a.c.Args[i]))
				if err != nil {
					return fmt.Errorf("%s: replica path arg%d unreadable", d.Name, i)
				}
				m.chargeCompare(a.t, len(ms))
				caps[k+1].deep = append(caps[k+1].deep, capturedBuf{arg: i, data: []byte(ss)})
			}
		case sysdesc.ArgInBuf, sysdesc.ArgInOutBuf:
			size := d.InBufSize(i, master.c)
			if size == 0 || master.c.Args[i] == 0 {
				continue
			}
			mbuf, err := master.t.Proc.Mem.ReadBytes(mem.Addr(master.c.Args[i]), size)
			if err != nil {
				return fmt.Errorf("%s: master buffer arg%d unreadable", d.Name, i)
			}
			caps[0].deep = append(caps[0].deep, capturedBuf{arg: i, data: mbuf})
			for k, a := range arrivals[1:] {
				sbuf, err := a.t.Proc.Mem.ReadBytes(mem.Addr(a.c.Args[i]), size)
				if err != nil {
					return fmt.Errorf("%s: replica buffer arg%d unreadable", d.Name, i)
				}
				m.chargeCompare(a.t, size)
				caps[k+1].deep = append(caps[k+1].deep, capturedBuf{arg: i, data: sbuf})
			}
		case sysdesc.ArgIovec:
			mdata, err := gatherIovec(master.t, master.c, i, spec.LenArg)
			if err != nil {
				return err
			}
			caps[0].deep = append(caps[0].deep, capturedBuf{arg: i, data: mdata})
			for k, a := range arrivals[1:] {
				sdata, err := gatherIovec(a.t, a.c, i, spec.LenArg)
				if err != nil {
					return err
				}
				m.chargeCompare(a.t, len(mdata))
				caps[k+1].deep = append(caps[k+1].deep, capturedBuf{arg: i, data: sdata})
			}
		}
	}
	return nil
}

// verifyEntry runs the deferred equality pass over one captured round,
// producing compareArgs' exact error strings.
func verifyEntry(e *epochEntry) error {
	d := e.d
	master := &e.caps[0]
	for i := 0; i < d.NArgs; i++ {
		switch d.Args[i].Type {
		case sysdesc.ArgInt, sysdesc.ArgFD:
			for k := 1; k < len(e.caps); k++ {
				if e.caps[k].regs[i] != master.regs[i] {
					return fmt.Errorf("%s: arg%d %d != master %d",
						d.Name, i, e.caps[k].regs[i], master.regs[i])
				}
			}
		case sysdesc.ArgPtrOpaque, sysdesc.ArgOutBuf:
			for k := 1; k < len(e.caps); k++ {
				if (e.caps[k].regs[i] == 0) != (master.regs[i] == 0) {
					return fmt.Errorf("%s: arg%d NULL-ness differs", d.Name, i)
				}
			}
		case sysdesc.ArgPath:
			ms := master.deepAt(i)
			for k := 1; k < len(e.caps); k++ {
				if ss := e.caps[k].deepAt(i); !bytes.Equal(ss, ms) {
					return fmt.Errorf("%s: path %q != master %q", d.Name, ss, ms)
				}
			}
		case sysdesc.ArgInBuf, sysdesc.ArgInOutBuf:
			mbuf := master.deepAt(i)
			if mbuf == nil {
				continue // size 0 / NULL pointer: skipped at capture
			}
			for k := 1; k < len(e.caps); k++ {
				sbuf := e.caps[k].deepAt(i)
				for j := range mbuf {
					if j >= len(sbuf) || mbuf[j] != sbuf[j] {
						return fmt.Errorf("%s: buffer arg%d differs at byte %d", d.Name, i, j)
					}
				}
			}
		case sysdesc.ArgIovec:
			mdata := master.deepAt(i)
			for k := 1; k < len(e.caps); k++ {
				sdata := e.caps[k].deepAt(i)
				if len(mdata) != len(sdata) {
					return fmt.Errorf("%s: iovec size differs", d.Name)
				}
				if !bytes.Equal(mdata, sdata) {
					return fmt.Errorf("%s: iovec content differs", d.Name)
				}
			}
		}
	}
	return nil
}

// flushGroup verifies and clears one group's epoch window. The first
// divergence (in arrival order) wins, exactly as it would have under
// immediate verification.
func (m *Monitor) flushGroup(g *ring) {
	g.winMu.Lock()
	if len(g.window) == 0 {
		g.winMu.Unlock()
		return
	}
	m.at.epochFlushes.Add(1)
	var firstErr error
	var firstCall *vkernel.Call
	for i := range g.window {
		if err := verifyEntry(&g.window[i]); err != nil {
			firstErr, firstCall = err, g.window[i].c
			break
		}
	}
	g.window = g.window[:0]
	g.capArena = g.capArena[:0]
	g.winMu.Unlock()
	if firstErr != nil {
		m.declareDivergence(firstCall, firstErr.Error())
	}
}

// flushEpochs forces an epoch boundary on every group.
func (m *Monitor) flushEpochs() {
	m.groups.Range(func(_, v any) bool {
		m.flushGroup(v.(*ring))
		return true
	})
}
