package ghumvee

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"remon/internal/fdmap"
	"remon/internal/mem"
	"remon/internal/vkernel"
	"remon/internal/vnet"
)

// monEnv is a 2-replica monitor harness with per-replica arenas.
type monEnv struct {
	k       *vkernel.Kernel
	m       *Monitor
	threads []*vkernel.Thread
	arenas  []mem.Addr
	offs    []uint64
}

func newMonEnv(t *testing.T, replicas int) *monEnv {
	t.Helper()
	k := vkernel.New(vnet.New(vnet.Loopback))
	var procs []*vkernel.Process
	for i := 0; i < replicas; i++ {
		procs = append(procs, k.NewProcess("rep", uint64(i+1)*7, i))
	}
	m := New(k, procs)
	e := &monEnv{k: k, m: m}
	for _, p := range procs {
		th := p.NewThread(nil)
		m.RegisterThread(th, 0)
		r, err := p.Mem.Map(1<<20, mem.ProtRead|mem.ProtWrite, "arena")
		if err != nil {
			t.Fatal(err)
		}
		e.threads = append(e.threads, th)
		e.arenas = append(e.arenas, r.Start)
		e.offs = append(e.offs, 0)
	}
	return e
}

func (e *monEnv) alloc(rep, n int) mem.Addr {
	a := e.arenas[rep] + mem.Addr(e.offs[rep])
	e.offs[rep] += uint64((n + 15) &^ 15)
	return a
}

func (e *monEnv) put(rep int, b []byte) mem.Addr {
	a := e.alloc(rep, len(b))
	if err := e.threads[rep].Proc.Mem.Write(a, b); err != nil {
		panic(err)
	}
	return a
}

// lockstep issues the same logical call from every replica concurrently
// and returns the per-replica results.
func (e *monEnv) lockstep(t *testing.T, calls []*vkernel.Call) []vkernel.Result {
	t.Helper()
	results := make([]vkernel.Result, len(e.threads))
	var wg sync.WaitGroup
	for i := range e.threads {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			th := e.threads[idx]
			results[idx] = e.m.MonitorCall(th, calls[idx], func(c *vkernel.Call) vkernel.Result {
				return th.RawSyscallC(c)
			})
		}(i)
	}
	wg.Wait()
	return results
}

func TestLockstepMasterCallReplication(t *testing.T) {
	e := newMonEnv(t, 2)
	e.k.FS.WriteFile("/etc/data", []byte("replicate-me"), 0o644)

	// Both replicas open the file (paths at different addresses, same
	// content).
	openCalls := []*vkernel.Call{
		{Num: vkernel.SysOpen, Args: [6]uint64{uint64(e.put(0, []byte("/etc/data\x00"))), 0, 0}},
		{Num: vkernel.SysOpen, Args: [6]uint64{uint64(e.put(1, []byte("/etc/data\x00"))), 0, 0}},
	}
	res := e.lockstep(t, openCalls)
	if !res[0].Ok() || res[0].Val != res[1].Val {
		t.Fatalf("open results differ: %+v", res)
	}
	fd := res[0].Val

	// Read: master executes, slave receives the buffer copy.
	buf0 := e.alloc(0, 64)
	buf1 := e.alloc(1, 64)
	readCalls := []*vkernel.Call{
		{Num: vkernel.SysRead, Args: [6]uint64{fd, uint64(buf0), 12}},
		{Num: vkernel.SysRead, Args: [6]uint64{fd, uint64(buf1), 12}},
	}
	res = e.lockstep(t, readCalls)
	if !res[0].Ok() || res[0].Val != 12 {
		t.Fatalf("read = %+v", res[0])
	}
	got1, err := e.threads[1].Proc.Mem.ReadBytes(buf1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if string(got1) != "replicate-me" {
		t.Fatalf("slave buffer = %q, want replicated content", got1)
	}
	st := e.m.Stats()
	if st.MasterCalls != 2 || st.BytesReplicated == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLockstepDetectsArgDivergence(t *testing.T) {
	e := newMonEnv(t, 2)
	calls := []*vkernel.Call{
		{Num: vkernel.SysLseek, Args: [6]uint64{3, 100, 0}},
		{Num: vkernel.SysLseek, Args: [6]uint64{3, 999, 0}}, // divergent offset
	}
	res := e.lockstep(t, calls)
	if !e.m.Diverged() {
		t.Fatal("scalar divergence not detected")
	}
	for _, r := range res {
		if r.Ok() {
			t.Fatal("divergent call completed")
		}
	}
	if v := e.m.Verdict(); v.Syscall != "lseek" {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestLockstepDetectsSyscallNrDivergence(t *testing.T) {
	e := newMonEnv(t, 2)
	calls := []*vkernel.Call{
		{Num: vkernel.SysGetpid},
		{Num: vkernel.SysGettid},
	}
	e.lockstep(t, calls)
	if !e.m.Diverged() {
		t.Fatal("syscall-number divergence not detected")
	}
}

func TestLockstepDetectsBufferDivergence(t *testing.T) {
	e := newMonEnv(t, 2)
	e.k.FS.WriteFile("/tmp/out", nil, 0o644)
	open := []*vkernel.Call{
		{Num: vkernel.SysOpen, Args: [6]uint64{uint64(e.put(0, []byte("/tmp/out\x00"))), vkernel.ORdwr, 0}},
		{Num: vkernel.SysOpen, Args: [6]uint64{uint64(e.put(1, []byte("/tmp/out\x00"))), vkernel.ORdwr, 0}},
	}
	fd := e.lockstep(t, open)[0].Val
	writes := []*vkernel.Call{
		{Num: vkernel.SysWrite, Args: [6]uint64{fd, uint64(e.put(0, []byte("AAAA"))), 4}},
		{Num: vkernel.SysWrite, Args: [6]uint64{fd, uint64(e.put(1, []byte("AAAB"))), 4}},
	}
	e.lockstep(t, writes)
	if !e.m.Diverged() {
		t.Fatal("buffer-content divergence not detected")
	}
}

func TestPathComparisonAcceptsDifferentAddresses(t *testing.T) {
	e := newMonEnv(t, 2)
	e.k.FS.WriteFile("/etc/same", []byte("x"), 0o644)
	// Same path string, wildly different virtual addresses.
	calls := []*vkernel.Call{
		{Num: vkernel.SysAccess, Args: [6]uint64{uint64(e.put(0, []byte("/etc/same\x00"))), 0}},
		{Num: vkernel.SysAccess, Args: [6]uint64{uint64(e.put(1, []byte("/etc/same\x00"))), 0}},
	}
	res := e.lockstep(t, calls)
	if e.m.Diverged() {
		t.Fatalf("equivalent paths flagged divergent: %+v", e.m.Verdict())
	}
	if !res[0].Ok() || !res[1].Ok() {
		t.Fatalf("access failed: %+v", res)
	}
}

func TestAllReplicasCallsRunEverywhere(t *testing.T) {
	e := newMonEnv(t, 2)
	calls := []*vkernel.Call{
		{Num: vkernel.SysMmap, Args: [6]uint64{0, 8192, 0x3, vkernel.MapAnonymous | vkernel.MapPrivate, 0, 0}},
		{Num: vkernel.SysMmap, Args: [6]uint64{0, 8192, 0x3, vkernel.MapAnonymous | vkernel.MapPrivate, 0, 0}},
	}
	res := e.lockstep(t, calls)
	if e.m.Diverged() {
		t.Fatal("mmap lockstep diverged")
	}
	if !res[0].Ok() || !res[1].Ok() {
		t.Fatalf("mmap failed: %+v", res)
	}
	// Each replica got its own (diversified) mapping.
	if res[0].Val == res[1].Val {
		t.Log("note: identical mmap addresses across replicas (possible but unexpected)")
	}
	if e.m.Stats().AllReplicaCalls != 1 {
		t.Fatalf("AllReplicaCalls = %d", e.m.Stats().AllReplicaCalls)
	}
}

func TestShmRejection(t *testing.T) {
	e := newMonEnv(t, 2)
	calls := []*vkernel.Call{
		{Num: vkernel.SysShmget, Args: [6]uint64{0, 4096, 0}},
		{Num: vkernel.SysShmget, Args: [6]uint64{0, 4096, 0}},
	}
	res := e.lockstep(t, calls)
	for _, r := range res {
		if r.Errno != vkernel.EPERM {
			t.Fatalf("shmget = %v, want EPERM", r.Errno)
		}
	}
	if e.m.Stats().ShmRejected != 1 {
		t.Fatalf("ShmRejected = %d", e.m.Stats().ShmRejected)
	}
	// But allowed during arbitrated setup.
	e.m.SetAllowShm(true)
	res = e.lockstep(t, calls)
	if !res[0].Ok() {
		t.Fatalf("arbitrated shmget = %v", res[0].Errno)
	}
}

func TestFileMapTracking(t *testing.T) {
	e := newMonEnv(t, 2)
	e.k.FS.WriteFile("/tmp/tracked", nil, 0o644)
	open := []*vkernel.Call{
		{Num: vkernel.SysOpen, Args: [6]uint64{uint64(e.put(0, []byte("/tmp/tracked\x00"))), vkernel.ORdwr, 0}},
		{Num: vkernel.SysOpen, Args: [6]uint64{uint64(e.put(1, []byte("/tmp/tracked\x00"))), vkernel.ORdwr, 0}},
	}
	fd := int(e.lockstep(t, open)[0].Val)
	typ, nb, open2 := e.m.FileMap().Lookup(fd)
	if !open2 || typ != fdmap.TypeRegular || nb {
		t.Fatalf("file map after open: typ=%d nb=%v open=%v", typ, nb, open2)
	}
	// fcntl F_SETFL O_NONBLOCK updates the non-blocking bit.
	fcntl := []*vkernel.Call{
		{Num: vkernel.SysFcntl, Args: [6]uint64{uint64(fd), vkernel.FSetFL, vkernel.ONonblock}},
		{Num: vkernel.SysFcntl, Args: [6]uint64{uint64(fd), vkernel.FSetFL, vkernel.ONonblock}},
	}
	e.lockstep(t, fcntl)
	if _, nb, _ := e.m.FileMap().Lookup(fd); !nb {
		t.Fatal("non-blocking flag not tracked")
	}
	// close clears the entry.
	closeCalls := []*vkernel.Call{
		{Num: vkernel.SysClose, Args: [6]uint64{uint64(fd)}},
		{Num: vkernel.SysClose, Args: [6]uint64{uint64(fd)}},
	}
	e.lockstep(t, closeCalls)
	if _, _, open3 := e.m.FileMap().Lookup(fd); open3 {
		t.Fatal("file map entry survives close")
	}
}

func TestSignalGateDefersAndRedelivers(t *testing.T) {
	e := newMonEnv(t, 2)
	fired := make([]int, 2)
	for i, th := range e.threads {
		idx := i
		th.Proc.RegisterSignalHandler(vkernel.SIGUSR1, func(tt *vkernel.Thread, sig int) {
			fired[idx]++
		})
	}
	// Signal hits the master outside a rendezvous: must be deferred.
	e.threads[0].Proc.Kill(vkernel.SIGUSR1)
	if e.m.PendingSignals() != 1 {
		t.Fatalf("pending = %d, want 1", e.m.PendingSignals())
	}
	if fired[0] != 0 {
		t.Fatal("signal delivered before rendezvous")
	}
	// The next lockstep round re-initiates delivery in both replicas;
	// handlers run at the replicas' next syscall boundary (here: a plain
	// user-entry syscall after the rendezvous).
	calls := []*vkernel.Call{{Num: vkernel.SysGetpid}, {Num: vkernel.SysGetpid}}
	e.lockstep(t, calls)
	for _, th := range e.threads {
		th.Syscall(vkernel.SysGetpid)
	}
	if fired[0] != 1 || fired[1] != 1 {
		t.Fatalf("deliveries = %v, want [1 1]", fired)
	}
	if e.m.PendingSignals() != 0 {
		t.Fatal("pending queue not drained")
	}
}

func TestSlaveSignalAbsorbed(t *testing.T) {
	e := newMonEnv(t, 2)
	fired := 0
	e.threads[1].Proc.RegisterSignalHandler(vkernel.SIGUSR1, func(tt *vkernel.Thread, sig int) { fired++ })
	e.threads[1].Proc.Kill(vkernel.SIGUSR1)
	calls := []*vkernel.Call{{Num: vkernel.SysGetpid}, {Num: vkernel.SysGetpid}}
	e.lockstep(t, calls)
	if fired != 0 {
		t.Fatal("slave-directed signal delivered directly")
	}
}

func TestCrashedReplicaTriggersShutdown(t *testing.T) {
	e := newMonEnv(t, 2)
	e.threads[1].Crash("simulated SIGSEGV")
	if !e.m.Diverged() {
		t.Fatal("replica crash did not trigger divergence")
	}
	// Every replica is torn down.
	for _, th := range e.threads {
		if !th.Exited() {
			t.Fatal("replica survived shutdown")
		}
	}
}

func TestNonReplicaThreadPassesThrough(t *testing.T) {
	e := newMonEnv(t, 2)
	outsider := e.k.NewProcess("client", 99, 5)
	th := outsider.NewThread(nil)
	r := e.m.MonitorCall(th, &vkernel.Call{Num: vkernel.SysGetpid}, func(c *vkernel.Call) vkernel.Result {
		return th.RawSyscallC(c)
	})
	if !r.Ok() || r.Val != uint64(outsider.PID) {
		t.Fatalf("outsider call = %+v", r)
	}
	if e.m.Stats().MonitoredCalls != 0 {
		t.Fatal("outsider call counted as monitored")
	}
}

func TestEpollCookieRecordingAndTranslation(t *testing.T) {
	e := newMonEnv(t, 2)
	// Create an epoll fd + a pipe in the master (lockstep).
	epoll := []*vkernel.Call{
		{Num: vkernel.SysEpollCreate1, Args: [6]uint64{0}},
		{Num: vkernel.SysEpollCreate1, Args: [6]uint64{0}},
	}
	epfd := e.lockstep(t, epoll)[0].Val
	pipeOut0 := e.alloc(0, 8)
	pipeOut1 := e.alloc(1, 8)
	pipe := []*vkernel.Call{
		{Num: vkernel.SysPipe, Args: [6]uint64{uint64(pipeOut0)}},
		{Num: vkernel.SysPipe, Args: [6]uint64{uint64(pipeOut1)}},
	}
	e.lockstep(t, pipe)
	raw, _ := e.threads[0].Proc.Mem.ReadBytes(pipeOut0, 8)
	rfd := uint64(binary.LittleEndian.Uint32(raw[0:]))
	wfd := uint64(binary.LittleEndian.Uint32(raw[4:]))

	// Each replica registers its own cookie.
	mkEvent := func(rep int, cookie uint64) mem.Addr {
		ev := make([]byte, vkernel.EpollEventSize)
		binary.LittleEndian.PutUint32(ev[0:], vkernel.EpollIn)
		binary.LittleEndian.PutUint64(ev[8:], cookie)
		return e.put(rep, ev)
	}
	ctl := []*vkernel.Call{
		{Num: vkernel.SysEpollCtl, Args: [6]uint64{epfd, vkernel.EpollCtlAdd, rfd, uint64(mkEvent(0, 0xAAAA0000))}},
		{Num: vkernel.SysEpollCtl, Args: [6]uint64{epfd, vkernel.EpollCtlAdd, rfd, uint64(mkEvent(1, 0xBBBB0000))}},
	}
	if res := e.lockstep(t, ctl); !res[0].Ok() {
		t.Fatalf("epoll_ctl: %v", res[0].Errno)
	}
	if e.m.Diverged() {
		t.Fatalf("cookie difference flagged divergent: %+v", e.m.Verdict())
	}

	// Write a byte so the pipe is readable, then epoll_wait.
	wr := []*vkernel.Call{
		{Num: vkernel.SysWrite, Args: [6]uint64{wfd, uint64(e.put(0, []byte("x"))), 1}},
		{Num: vkernel.SysWrite, Args: [6]uint64{wfd, uint64(e.put(1, []byte("x"))), 1}},
	}
	e.lockstep(t, wr)
	out0 := e.alloc(0, vkernel.EpollEventSize*4)
	out1 := e.alloc(1, vkernel.EpollEventSize*4)
	wait := []*vkernel.Call{
		{Num: vkernel.SysEpollWait, Args: [6]uint64{epfd, uint64(out0), 4, 0}},
		{Num: vkernel.SysEpollWait, Args: [6]uint64{epfd, uint64(out1), 4, 0}},
	}
	res := e.lockstep(t, wait)
	if !res[0].Ok() || res[0].Val != 1 {
		t.Fatalf("epoll_wait = %+v", res[0])
	}
	slaveEv, _ := e.threads[1].Proc.Mem.ReadBytes(out1, vkernel.EpollEventSize)
	if got := binary.LittleEndian.Uint64(slaveEv[8:]); got != 0xBBBB0000 {
		t.Fatalf("slave cookie = %#x, want its own 0xBBBB0000", got)
	}
	masterEv, _ := e.threads[0].Proc.Mem.ReadBytes(out0, vkernel.EpollEventSize)
	if got := binary.LittleEndian.Uint64(masterEv[8:]); got != 0xAAAA0000 {
		t.Fatalf("master cookie = %#x, want 0xAAAA0000", got)
	}
}

func TestThreeReplicaLockstep(t *testing.T) {
	e := newMonEnv(t, 3)
	calls := []*vkernel.Call{
		{Num: vkernel.SysGetpid}, {Num: vkernel.SysGetpid}, {Num: vkernel.SysGetpid},
	}
	res := e.lockstep(t, calls)
	if e.m.Diverged() {
		t.Fatal("3-replica getpid diverged")
	}
	// All replicas observe the master's pid (consistency, §2.1).
	if res[0].Val != res[1].Val || res[1].Val != res[2].Val {
		t.Fatalf("inconsistent getpid results: %+v", res)
	}
}

func TestPerMonitorLockstepTimeout(t *testing.T) {
	// Two monitors on different kernels hold different watchdogs — the
	// state the old package global made racy under concurrent MVEEs.
	e1 := newMonEnv(t, 2)
	e2 := newMonEnv(t, 2)
	e1.m.SetLockstepTimeout(50 * time.Millisecond)
	if got := e1.m.LockstepTimeout(); got != 50*time.Millisecond {
		t.Fatalf("timeout = %v", got)
	}
	if got := e2.m.LockstepTimeout(); got != DefaultLockstepTimeout {
		t.Fatalf("second monitor inherited foreign timeout: %v", got)
	}
	e1.m.SetLockstepTimeout(0) // ignored
	if got := e1.m.LockstepTimeout(); got != 50*time.Millisecond {
		t.Fatalf("zero overwrote timeout: %v", got)
	}

	// The short watchdog fires when only one replica shows up.
	done := make(chan vkernel.Result, 1)
	go func() {
		done <- e1.m.MonitorCall(e1.threads[0], &vkernel.Call{Num: vkernel.SysGetpid},
			func(c *vkernel.Call) vkernel.Result { return e1.threads[0].RawSyscallC(c) })
	}()
	select {
	case r := <-done:
		if r.Ok() {
			t.Fatal("half-arrived lockstep call completed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("short per-monitor watchdog never fired")
	}
	if !e1.m.Diverged() {
		t.Fatal("watchdog timeout did not declare divergence")
	}
	if e2.m.Diverged() {
		t.Fatal("divergence leaked across monitors")
	}
}

func TestVerdictHandlerFiresOnce(t *testing.T) {
	e := newMonEnv(t, 2)
	var mu sync.Mutex
	var got []Verdict
	e.m.SetVerdictHandler(func(v Verdict) {
		mu.Lock()
		got = append(got, v)
		mu.Unlock()
	})
	calls := []*vkernel.Call{
		{Num: vkernel.SysLseek, Args: [6]uint64{3, 1, 0}},
		{Num: vkernel.SysLseek, Args: [6]uint64{3, 2, 0}},
	}
	e.lockstep(t, calls)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || !got[0].Diverged || got[0].Syscall != "lseek" {
		t.Fatalf("verdict handler calls = %+v", got)
	}
}

func TestStopTearsDownWithoutVerdict(t *testing.T) {
	e := newMonEnv(t, 2)
	e.m.Stop("test retirement")
	e.m.Stop("") // idempotent
	if !e.m.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
	if e.m.Diverged() {
		t.Fatal("administrative stop recorded a divergence")
	}
	if v := e.m.Verdict(); v.Diverged {
		t.Fatalf("verdict after stop = %+v", v)
	}
	for _, th := range e.threads {
		if !th.Exited() {
			t.Fatal("replica thread survived Stop")
		}
	}
	// Crash reports arriving after Stop (the teardown's own crashes) must
	// not flip the verdict.
	if e.m.Diverged() {
		t.Fatal("post-stop crash became a divergence verdict")
	}
	// Further monitored calls bail out cleanly.
	r := e.m.MonitorCall(e.threads[0], &vkernel.Call{Num: vkernel.SysGetpid},
		func(c *vkernel.Call) vkernel.Result { return vkernel.Result{} })
	if r.Ok() {
		t.Fatal("monitored call completed on a stopped monitor")
	}
}

func TestClockLockstepSync(t *testing.T) {
	e := newMonEnv(t, 2)
	e.threads[0].Clock.Advance(1000)
	e.threads[1].Clock.Advance(500000) // slow replica
	calls := []*vkernel.Call{{Num: vkernel.SysGetpid}, {Num: vkernel.SysGetpid}}
	e.lockstep(t, calls)
	// Lockstep: both clocks meet at (at least) the slowest arrival.
	if e.threads[0].Clock.Now() < 500000 {
		t.Fatalf("fast replica clock %v not synced to lockstep", e.threads[0].Clock.Now())
	}
}
