// Package fdmap implements the IP-MON file map (§3.6) and the epoll
// shadow mapping (§3.9).
//
// The file map is one byte of metadata per file descriptor, kept in a
// page-sized shared memory segment. GHUMVEE — which arbitrates all
// FD-creating/modifying/destroying calls — is the only writer; replicas
// map the page read-only so IP-MON can consult it when evaluating
// conditional relaxation policies and when predicting whether a call may
// block.
package fdmap

import (
	"sync"

	"remon/internal/mem"
	"remon/internal/policy"
	"remon/internal/vkernel"
)

// Byte layout of one file-map entry.
const (
	typeMask     = 0x07
	flagNonblock = 0x40
	flagOpen     = 0x80
)

// FD types stored in the map's low bits.
const (
	TypeNone uint8 = iota
	TypeRegular
	TypePipe
	TypeSocket
	TypePollFD
	TypeSpecial // files whose reads GHUMVEE must filter (/proc/<pid>/maps)
	TypeDir
	TypeTimer
)

// MapSize is one page: 4096 descriptors, one byte each.
const MapSize = mem.PageSize

// FileMap is the shared, GHUMVEE-maintained descriptor metadata table.
type FileMap struct {
	mu  sync.RWMutex
	seg *mem.SharedSegment
	// cache avoids a segment read on the monitor's own lookups.
	local [MapSize]uint8
}

// New creates a file map backed by the given shared segment (which the
// monitor maps into every replica read-only).
func New(seg *mem.SharedSegment) *FileMap {
	return &FileMap{seg: seg}
}

// Segment exposes the backing segment for mapping into replicas.
func (m *FileMap) Segment() *mem.SharedSegment { return m.seg }

// Set records descriptor fd's type and non-blocking flag.
func (m *FileMap) Set(fd int, typ uint8, nonblock bool) {
	if fd < 0 || fd >= MapSize {
		return
	}
	b := (typ & typeMask) | flagOpen
	if nonblock {
		b |= flagNonblock
	}
	m.mu.Lock()
	m.local[fd] = b
	if m.seg != nil {
		_ = m.seg.WriteAt([]byte{b}, uint64(fd))
	}
	m.mu.Unlock()
}

// Clear marks fd closed.
func (m *FileMap) Clear(fd int) {
	if fd < 0 || fd >= MapSize {
		return
	}
	m.mu.Lock()
	m.local[fd] = 0
	if m.seg != nil {
		_ = m.seg.WriteAt([]byte{0}, uint64(fd))
	}
	m.mu.Unlock()
}

// Lookup reads fd's metadata.
func (m *FileMap) Lookup(fd int) (typ uint8, nonblock, open bool) {
	if fd < 0 || fd >= MapSize {
		return TypeNone, false, false
	}
	m.mu.RLock()
	b := m.local[fd]
	m.mu.RUnlock()
	return b & typeMask, b&flagNonblock != 0, b&flagOpen != 0
}

// Class maps fd metadata to the policy-level descriptor class.
func (m *FileMap) Class(fd int) policy.FDClass {
	typ, _, open := m.Lookup(fd)
	if !open {
		return policy.FDUnknown
	}
	switch typ {
	case TypeSocket:
		return policy.FDSock
	case TypePollFD:
		return policy.FDPollFD
	case TypeSpecial:
		return policy.FDUnknown // special files force monitoring (§3.1)
	default:
		return policy.FDNonSocket
	}
}

// MayBlock predicts whether an operation on fd can block: non-blocking
// descriptors always return immediately (§3.6); regular files never block
// in the simulation; pipes, sockets and epoll instances may.
func (m *FileMap) MayBlock(fd int) bool {
	typ, nonblock, open := m.Lookup(fd)
	if !open || nonblock {
		return false
	}
	switch typ {
	case TypePipe, TypeSocket, TypePollFD, TypeTimer:
		return true
	}
	return false
}

// TypeFromKind converts a kernel FD kind to a file-map type byte.
func TypeFromKind(k vkernel.FDKind, special bool) uint8 {
	if special {
		return TypeSpecial
	}
	switch k {
	case vkernel.FDRegular:
		return TypeRegular
	case vkernel.FDDir:
		return TypeDir
	case vkernel.FDPipeRead, vkernel.FDPipeWrite:
		return TypePipe
	case vkernel.FDSocket, vkernel.FDListener:
		return TypeSocket
	case vkernel.FDEpoll:
		return TypePollFD
	case vkernel.FDSpecial:
		return TypeSpecial
	case vkernel.FDTimer:
		return TypeTimer
	}
	return TypeNone
}

// EpollShadow is the per-replica fd <-> epoll cookie mapping (§3.9).
// Diversified replicas register different pointer values for the same
// logical descriptor; replicating the master's cookies verbatim would hand
// slaves dangling master pointers. The shadow map lets the monitor store
// fds in flight and translate back to each replica's own cookie on
// delivery.
type EpollShadow struct {
	mu sync.RWMutex
	// byReplica[r][fd] = cookie registered by replica r for fd.
	byReplica []map[int]uint64
}

// NewEpollShadow creates a shadow map for n replicas.
func NewEpollShadow(n int) *EpollShadow {
	s := &EpollShadow{byReplica: make([]map[int]uint64, n)}
	for i := range s.byReplica {
		s.byReplica[i] = map[int]uint64{}
	}
	return s
}

// Register records replica r's cookie for fd (EPOLL_CTL_ADD/MOD).
func (s *EpollShadow) Register(r, fd int, cookie uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r < 0 || r >= len(s.byReplica) {
		return
	}
	s.byReplica[r][fd] = cookie
}

// Unregister removes fd (EPOLL_CTL_DEL, close).
func (s *EpollShadow) Unregister(r, fd int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r < 0 || r >= len(s.byReplica) {
		return
	}
	delete(s.byReplica[r], fd)
}

// FDForCookie finds the fd whose cookie (in replica r) equals cookie. The
// master's returned events are translated fd-ward with this.
func (s *EpollShadow) FDForCookie(r int, cookie uint64) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r < 0 || r >= len(s.byReplica) {
		return 0, false
	}
	for fd, ck := range s.byReplica[r] {
		if ck == cookie {
			return fd, true
		}
	}
	return 0, false
}

// CookieForFD reports replica r's cookie for fd.
func (s *EpollShadow) CookieForFD(r, fd int) (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r < 0 || r >= len(s.byReplica) {
		return 0, false
	}
	ck, ok := s.byReplica[r][fd]
	return ck, ok
}
