package fdmap

import (
	"testing"

	"remon/internal/mem"
	"remon/internal/policy"
	"remon/internal/vkernel"
)

func TestSetLookupClear(t *testing.T) {
	m := New(mem.NewSharedSegment(1, MapSize))
	m.Set(3, TypeSocket, true)
	typ, nb, open := m.Lookup(3)
	if typ != TypeSocket || !nb || !open {
		t.Fatalf("Lookup = %d %v %v", typ, nb, open)
	}
	m.Clear(3)
	if _, _, open := m.Lookup(3); open {
		t.Fatal("cleared fd still open")
	}
}

func TestLookupOutOfRange(t *testing.T) {
	m := New(mem.NewSharedSegment(1, MapSize))
	if _, _, open := m.Lookup(-1); open {
		t.Fatal("negative fd open")
	}
	if _, _, open := m.Lookup(MapSize + 5); open {
		t.Fatal("huge fd open")
	}
	m.Set(-1, TypeRegular, false)        // no panic
	m.Set(MapSize+5, TypeRegular, false) // no panic
}

func TestSharedSegmentVisibility(t *testing.T) {
	// The byte written by the monitor must be visible through the shared
	// segment — that is how replicas read the map.
	seg := mem.NewSharedSegment(2, MapSize)
	m := New(seg)
	m.Set(7, TypePipe, false)
	var b [1]byte
	if err := seg.ReadAt(b[:], 7); err != nil {
		t.Fatal(err)
	}
	if b[0]&0x07 != TypePipe || b[0]&0x80 == 0 {
		t.Fatalf("segment byte = %#x", b[0])
	}
}

func TestClass(t *testing.T) {
	m := New(mem.NewSharedSegment(3, MapSize))
	m.Set(1, TypeRegular, false)
	m.Set(2, TypeSocket, false)
	m.Set(3, TypePollFD, false)
	m.Set(4, TypeSpecial, false)
	cases := map[int]policy.FDClass{
		1:  policy.FDNonSocket,
		2:  policy.FDSock,
		3:  policy.FDPollFD,
		4:  policy.FDUnknown, // special files force monitoring
		99: policy.FDUnknown, // closed
	}
	for fd, want := range cases {
		if got := m.Class(fd); got != want {
			t.Errorf("Class(%d) = %v, want %v", fd, got, want)
		}
	}
}

func TestMayBlock(t *testing.T) {
	m := New(mem.NewSharedSegment(4, MapSize))
	m.Set(1, TypeRegular, false)
	m.Set(2, TypeSocket, false)
	m.Set(3, TypeSocket, true) // non-blocking socket
	m.Set(4, TypePipe, false)
	if m.MayBlock(1) {
		t.Fatal("regular file predicted blocking")
	}
	if !m.MayBlock(2) {
		t.Fatal("blocking socket predicted non-blocking")
	}
	if m.MayBlock(3) {
		t.Fatal("O_NONBLOCK socket predicted blocking (§3.6)")
	}
	if !m.MayBlock(4) {
		t.Fatal("pipe predicted non-blocking")
	}
	if m.MayBlock(50) {
		t.Fatal("closed fd predicted blocking")
	}
}

func TestTypeFromKind(t *testing.T) {
	cases := map[vkernel.FDKind]uint8{
		vkernel.FDRegular:   TypeRegular,
		vkernel.FDDir:       TypeDir,
		vkernel.FDPipeRead:  TypePipe,
		vkernel.FDPipeWrite: TypePipe,
		vkernel.FDSocket:    TypeSocket,
		vkernel.FDListener:  TypeSocket,
		vkernel.FDEpoll:     TypePollFD,
		vkernel.FDSpecial:   TypeSpecial,
		vkernel.FDTimer:     TypeTimer,
		vkernel.FDNone:      TypeNone,
	}
	for k, want := range cases {
		if got := TypeFromKind(k, false); got != want {
			t.Errorf("TypeFromKind(%v) = %d, want %d", k, got, want)
		}
	}
	if TypeFromKind(vkernel.FDRegular, true) != TypeSpecial {
		t.Fatal("special override lost")
	}
}

func TestEpollShadowTranslation(t *testing.T) {
	s := NewEpollShadow(2)
	// Replica 0 (master) registers pointer 0xAAAA for fd 5; replica 1's
	// diversified pointer is 0xBBBB.
	s.Register(0, 5, 0xAAAA)
	s.Register(1, 5, 0xBBBB)

	// Master's epoll_wait returned cookie 0xAAAA; translate to replica 1.
	fd, ok := s.FDForCookie(0, 0xAAAA)
	if !ok || fd != 5 {
		t.Fatalf("FDForCookie = %d, %v", fd, ok)
	}
	ck, ok := s.CookieForFD(1, fd)
	if !ok || ck != 0xBBBB {
		t.Fatalf("CookieForFD = %#x, %v", ck, ok)
	}
}

func TestEpollShadowUnregister(t *testing.T) {
	s := NewEpollShadow(2)
	s.Register(0, 5, 0xAAAA)
	s.Unregister(0, 5)
	if _, ok := s.FDForCookie(0, 0xAAAA); ok {
		t.Fatal("cookie survives unregister")
	}
}

func TestEpollShadowBounds(t *testing.T) {
	s := NewEpollShadow(1)
	s.Register(5, 1, 1) // out-of-range replica: ignored
	s.Unregister(-1, 1) // ignored
	if _, ok := s.FDForCookie(5, 1); ok {
		t.Fatal("out-of-range replica stored data")
	}
	if _, ok := s.CookieForFD(-2, 1); ok {
		t.Fatal("negative replica lookup succeeded")
	}
}
