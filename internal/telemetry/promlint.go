// A minimal Prometheus text-exposition (0.0.4) validator: enough of the
// grammar to prove scrape output is machine-parseable — names, label
// syntax, float values, TYPE declarations, histogram completeness —
// without importing a client library. Tests and harnesses run every
// exporter payload through it.
package telemetry

import (
	"fmt"
	"strconv"
	"strings"
)

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromParse validates text as Prometheus exposition format and returns
// the parsed samples. Checks applied:
//
//   - metric and label names match [a-zA-Z_:][a-zA-Z0-9_:]*;
//   - label values are quoted with valid escapes;
//   - sample values parse as Go floats (+Inf/-Inf/NaN allowed);
//   - every sample's base family has exactly one preceding # TYPE line,
//     and histogram samples only use the _bucket/_sum/_count suffixes;
//   - histogram series carry an le="+Inf" bucket whose value equals the
//     series' _count, and bucket counts are monotone in le.
func PromParse(text string) ([]PromSample, error) {
	var samples []PromSample
	types := map[string]string{}
	// histogram completeness accounting: family+labels(without le) ->
	// last cumulative bucket, +Inf value, _count value.
	type histState struct {
		lastLe  float64
		lastCum float64
		inf     *float64
		count   *float64
	}
	hists := map[string]*histState{}

	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name, kind := fields[2], fields[3]
				if !validName(name) {
					return nil, fmt.Errorf("line %d: invalid family name %q", lineNo, name)
				}
				if _, dup := types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q", lineNo, kind)
				}
				types[name] = kind
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := s.Name
		if fam, suffix := histFamily(s.Name, types); fam != "" {
			base = fam
			key := fam + "|" + labelsKeyWithoutLe(s.Labels)
			h := hists[key]
			if h == nil {
				h = &histState{lastLe: -1}
				hists[key] = h
			}
			switch suffix {
			case "_bucket":
				le, ok := s.Labels["le"]
				if !ok {
					return nil, fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				if le == "+Inf" {
					v := s.Value
					h.inf = &v
				} else {
					b, perr := strconv.ParseFloat(le, 64)
					if perr != nil {
						return nil, fmt.Errorf("line %d: bad le %q", lineNo, le)
					}
					if b <= h.lastLe {
						return nil, fmt.Errorf("line %d: le %q not increasing", lineNo, le)
					}
					if s.Value < h.lastCum {
						return nil, fmt.Errorf("line %d: bucket counts not cumulative", lineNo)
					}
					h.lastLe, h.lastCum = b, s.Value
				}
			case "_count":
				v := s.Value
				h.count = &v
			}
		}
		if _, ok := types[base]; !ok {
			return nil, fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, s.Name)
		}
		samples = append(samples, s)
	}

	for key, h := range hists {
		if h.inf == nil {
			return nil, fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", key)
		}
		if h.count == nil {
			return nil, fmt.Errorf("histogram %s: missing _count", key)
		}
		if *h.inf != *h.count {
			return nil, fmt.Errorf("histogram %s: +Inf bucket %v != count %v", key, *h.inf, *h.count)
		}
		if h.lastCum > *h.inf {
			return nil, fmt.Errorf("histogram %s: finite bucket exceeds +Inf", key)
		}
	}
	return samples, nil
}

// histFamily resolves a sample name to its declared histogram family, if
// the name is one of the histogram expansion suffixes of a family with
// TYPE histogram. Returns ("", "") otherwise.
func histFamily(name string, types map[string]string) (fam, suffix string) {
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, sfx) {
			base := strings.TrimSuffix(name, sfx)
			if types[base] == "histogram" {
				return base, sfx
			}
		}
	}
	return "", ""
}

func labelsKeyWithoutLe(labels map[string]string) string {
	var parts []string
	for k, v := range labels {
		if k == "le" {
			continue
		}
		parts = append(parts, k+"="+v)
	}
	// Order-stable enough for grouping: the renderer emits label sets in
	// one fixed order, so identical sets produce identical map contents;
	// sort for determinism across map iteration.
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return strings.Join(parts, ",")
}

// parseSampleLine parses `name{labels} value` (timestamp not supported —
// the registry never emits one).
func parseSampleLine(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	// Name runs to '{' or whitespace.
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return s, fmt.Errorf("no value: %q", line)
	}
	s.Name = rest[:end]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		close := strings.Index(rest, "}")
		if close < 0 {
			return s, fmt.Errorf("unterminated label set: %q", line)
		}
		if err := parseLabels(rest[1:close], s.Labels); err != nil {
			return s, err
		}
		rest = rest[close+1:]
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("no value: %q", line)
	}
	// Only the value field remains (no timestamps emitted).
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, into map[string]string) error {
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return fmt.Errorf("label without '=': %q", body)
		}
		key := body[:eq]
		if !validName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		body = body[eq+1:]
		if body == "" || body[0] != '"' {
			return fmt.Errorf("label %q value not quoted", key)
		}
		body = body[1:]
		var val strings.Builder
		i := 0
		for ; i < len(body); i++ {
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					return fmt.Errorf("label %q: dangling escape", key)
				}
				i++
				switch body[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("label %q: bad escape \\%c", key, body[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(body) {
			return fmt.Errorf("label %q: unterminated value", key)
		}
		if _, dup := into[key]; dup {
			return fmt.Errorf("duplicate label %q", key)
		}
		into[key] = val.String()
		body = body[i+1:]
		if body != "" {
			if body[0] != ',' {
				return fmt.Errorf("labels not comma-separated near %q", body)
			}
			body = body[1:]
		}
	}
	return nil
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if i == 0 && !letter {
			return false
		}
		if !letter && !(c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}
