// The exporter: Prometheus text-format scrapes and the JSON health
// document served over vnet, so the fleet's own virtual network carries
// its telemetry — a scrape is charged link serialisation and arrival
// stamps exactly like any data-plane request. The protocol is the
// minimal HTTP/1.1 subset a real scraper needs: GET, Content-Length,
// Connection: close.
package telemetry

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"remon/internal/model"
	"remon/internal/vnet"
)

// Exporter serves /metrics and /health on a vnet address.
type Exporter struct {
	reg    *Registry
	health HealthSource
	lis    *vnet.Listener
	wg     sync.WaitGroup

	// Self-instrumentation: the exporter is itself a registered
	// subsystem — scrape count and payload-size histogram exercise the
	// direct cell API.
	scrapes    *Counter
	scrapeSize *Histogram
}

// NewExporter binds the exporter to addr on net and starts its accept
// loop. health may be nil (the /health endpoint then reports a bare
// "ok"). Callers must Close.
func NewExporter(net *vnet.Network, addr string, reg *Registry, health HealthSource) (*Exporter, error) {
	lis, err := net.Listen(addr, 64)
	if err != nil {
		return nil, fmt.Errorf("telemetry: binding exporter %s: %w", addr, err)
	}
	e := &Exporter{
		reg:        reg,
		health:     health,
		lis:        lis,
		scrapes:    reg.Counter("remon_telemetry_scrapes_total", "Exporter scrapes served.", nil),
		scrapeSize: reg.Histogram("remon_telemetry_scrape_bytes", "Scrape payload sizes.", nil),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr reports the exporter's bound address.
func (e *Exporter) Addr() string { return e.lis.Addr() }

// Close unbinds the exporter and waits for in-flight scrapes.
func (e *Exporter) Close() {
	e.lis.Close()
	e.wg.Wait()
}

func (e *Exporter) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, at, err := e.lis.Accept(true)
		if err != nil {
			return // listener closed
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.handle(conn, at)
		}()
	}
}

// handle serves one scrape connection: read the request head, route on
// the path, write one response, close.
func (e *Exporter) handle(conn *vnet.Conn, at model.Duration) {
	defer conn.Close()
	head, now, ok := readHead(conn, at)
	if !ok {
		return
	}
	method, path := parseRequestLine(head)
	if method != "GET" {
		writeResponse(conn, now, 405, "text/plain; charset=utf-8", []byte("method not allowed\n"))
		return
	}
	switch trimQuery(path) {
	case "/metrics":
		body := []byte(e.reg.PromText())
		e.scrapes.Inc()
		e.scrapeSize.Observe(uint64(len(body)))
		writeResponse(conn, now, 200, "text/plain; version=0.0.4; charset=utf-8", body)
	case "/health", "/healthz":
		var body []byte
		if e.health != nil {
			body = e.health.Health().JSON()
		} else {
			body = []byte(`{"status":"ok"}`)
		}
		writeResponse(conn, now, 200, "application/json", body)
	default:
		writeResponse(conn, now, 404, "text/plain; charset=utf-8", []byte("not found\n"))
	}
}

// readHead accumulates request bytes until the header terminator. The
// returned Duration is the virtual arrival time of the request's last
// segment, which the response Send is charged from.
func readHead(conn *vnet.Conn, at model.Duration) (string, model.Duration, bool) {
	var head []byte
	now := at
	for {
		seg, arrive, err := conn.RecvSeg(true)
		if err != nil || seg == nil {
			return "", now, false
		}
		if arrive > now {
			now = arrive
		}
		head = append(head, seg...)
		if strings.Contains(string(head), "\r\n\r\n") || strings.Contains(string(head), "\n\n") {
			return string(head), now, true
		}
		if len(head) > 16<<10 {
			return "", now, false // oversized head: drop
		}
	}
}

func parseRequestLine(head string) (method, path string) {
	line := head
	if i := strings.IndexAny(line, "\r\n"); i >= 0 {
		line = line[:i]
	}
	parts := strings.Fields(line)
	if len(parts) < 2 {
		return "", ""
	}
	return parts[0], parts[1]
}

func trimQuery(path string) string {
	if i := strings.IndexByte(path, '?'); i >= 0 {
		return path[:i]
	}
	return path
}

var statusText = map[int]string{
	200: "OK",
	404: "Not Found",
	405: "Method Not Allowed",
}

func writeResponse(conn *vnet.Conn, now model.Duration, code int, ctype string, body []byte) {
	var b strings.Builder
	b.WriteString("HTTP/1.1 ")
	b.WriteString(strconv.Itoa(code))
	b.WriteByte(' ')
	b.WriteString(statusText[code])
	b.WriteString("\r\nContent-Type: ")
	b.WriteString(ctype)
	b.WriteString("\r\nContent-Length: ")
	b.WriteString(strconv.Itoa(len(body)))
	b.WriteString("\r\nConnection: close\r\n\r\n")
	b.Write(body)
	conn.Send([]byte(b.String()), now)
}

// ScrapeResult is one client-side scrape outcome.
type ScrapeResult struct {
	Status int
	Body   []byte
	// Arrived is the virtual time the response's last byte landed.
	Arrived model.Duration
}

// Scrape is the curl-equivalent: connect to the exporter over the vnet
// fabric, issue GET path, parse the status line and body out of the
// response. Virtual time is charged like any client request.
func Scrape(net *vnet.Network, addr, path string, now model.Duration) (ScrapeResult, error) {
	conn, at, err := net.Connect(addr, now)
	if err != nil {
		return ScrapeResult{}, fmt.Errorf("telemetry: scrape connect %s: %w", addr, err)
	}
	defer conn.Close()
	req := "GET " + path + " HTTP/1.1\r\nHost: " + addr + "\r\nConnection: close\r\n\r\n"
	if _, err := conn.Send([]byte(req), at); err != nil {
		return ScrapeResult{}, fmt.Errorf("telemetry: scrape send: %w", err)
	}
	var resp []byte
	arrived := at
	for {
		seg, arrive, err := conn.RecvSeg(true)
		if err != nil {
			return ScrapeResult{}, fmt.Errorf("telemetry: scrape recv: %w", err)
		}
		if seg == nil {
			break // EOF
		}
		if arrive > arrived {
			arrived = arrive
		}
		resp = append(resp, seg...)
		if done, _ := responseComplete(resp); done {
			break
		}
	}
	return parseResponse(resp, arrived)
}

// responseComplete reports whether resp holds a full header block plus
// Content-Length body bytes.
func responseComplete(resp []byte) (bool, int) {
	s := string(resp)
	i := strings.Index(s, "\r\n\r\n")
	if i < 0 {
		return false, 0
	}
	n := contentLength(s[:i])
	return len(resp) >= i+4+n, i + 4
}

func contentLength(head string) int {
	for _, line := range strings.Split(head, "\r\n") {
		k, v, ok := strings.Cut(line, ":")
		if ok && strings.EqualFold(strings.TrimSpace(k), "Content-Length") {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err == nil {
				return n
			}
		}
	}
	return 0
}

func parseResponse(resp []byte, arrived model.Duration) (ScrapeResult, error) {
	s := string(resp)
	i := strings.Index(s, "\r\n\r\n")
	if i < 0 {
		return ScrapeResult{}, fmt.Errorf("telemetry: malformed scrape response (%d bytes, no header terminator)", len(resp))
	}
	statusLine := s
	if j := strings.Index(s, "\r\n"); j >= 0 {
		statusLine = s[:j]
	}
	parts := strings.Fields(statusLine)
	if len(parts) < 2 {
		return ScrapeResult{}, fmt.Errorf("telemetry: malformed status line %q", statusLine)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return ScrapeResult{}, fmt.Errorf("telemetry: malformed status %q", parts[1])
	}
	body := resp[i+4:]
	if n := contentLength(s[:i]); n >= 0 && n <= len(body) {
		body = body[:n]
	}
	return ScrapeResult{Status: code, Body: body, Arrived: arrived}, nil
}
