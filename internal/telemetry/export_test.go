package telemetry

import (
	"encoding/json"
	"strings"
	"testing"

	"remon/internal/vnet"
)

type fakeHealth struct{}

func (fakeHealth) Health() HealthReport {
	return HealthReport{
		Status: "ok",
		Shards: []ShardHealth{{Shard: 0, State: "serving", Policy: "SOCKET_RW", LagHeadroom: 1}},
	}
}

// TestExporterScrape drives a full virtual-network scrape: bind, GET
// /metrics, validate the payload, GET /health, decode the JSON.
func TestExporterScrape(t *testing.T) {
	net := vnet.New(vnet.Loopback)
	reg := NewRegistry()
	reg.Counter("exp_reqs_total", "requests", L("shard", "0")).Add(5)

	exp, err := NewExporter(net, "telemetry:9090", reg, fakeHealth{})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	res, err := Scrape(net, "telemetry:9090", "/metrics", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 {
		t.Fatalf("scrape status %d, want 200", res.Status)
	}
	samples, err := PromParse(string(res.Body))
	if err != nil {
		t.Fatalf("scrape body invalid:\n%s\nerr: %v", res.Body, err)
	}
	found := false
	for _, s := range samples {
		if s.Name == "exp_reqs_total" && s.Labels["shard"] == "0" && s.Value == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("exp_reqs_total{shard=0} 5 not in scrape:\n%s", res.Body)
	}

	// The exporter self-instruments: a second scrape sees the first.
	res2, err := Scrape(net, "telemetry:9090", "/metrics", res.Arrived)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res2.Body), "remon_telemetry_scrapes_total") {
		t.Error("exporter self-metrics missing")
	}
	if !strings.Contains(string(res2.Body), "remon_telemetry_scrape_bytes_bucket") {
		t.Error("scrape-size histogram missing")
	}
	if res2.Arrived <= res.Arrived {
		t.Error("second scrape's virtual arrival did not advance")
	}

	// Health endpoint.
	hres, err := Scrape(net, "telemetry:9090", "/health", res2.Arrived)
	if err != nil {
		t.Fatal(err)
	}
	var rep HealthReport
	if err := json.Unmarshal(hres.Body, &rep); err != nil {
		t.Fatalf("health JSON invalid: %v\n%s", err, hres.Body)
	}
	if rep.Status != "ok" || len(rep.Shards) != 1 || rep.Shards[0].State != "serving" {
		t.Errorf("health report %+v", rep)
	}

	// Unknown path and bad method.
	if r, err := Scrape(net, "telemetry:9090", "/nope", 0); err != nil || r.Status != 404 {
		t.Errorf("unknown path: %v %v", r.Status, err)
	}
}
