package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries is the golden test for the
// power-of-two bucket map: every boundary value lands in the bucket
// whose rendered le is the smallest 2^i - 1 at or above it.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{16, 5},
		{1023, 10}, {1024, 11},
		{1<<32 - 1, 32},
		// Values past the covered range clamp into the last bucket.
		{1 << 32, 32},
		{math.MaxUint64, 32},
	}
	for _, c := range cases {
		h := &Histogram{}
		h.Observe(c.v)
		for i := 0; i < HistBuckets; i++ {
			want := uint64(0)
			if i == c.bucket {
				want = 1
			}
			if got := h.buckets[i].Load(); got != want {
				t.Errorf("Observe(%d): bucket %d = %d, want %d", c.v, i, got, want)
			}
		}
		if c.v < 1<<32 && BucketBound(c.bucket) < c.v {
			t.Errorf("Observe(%d): landed in bucket %d with bound %d < value",
				c.v, c.bucket, BucketBound(c.bucket))
		}
		if c.bucket > 0 && c.v < 1<<32 && BucketBound(c.bucket-1) >= c.v {
			t.Errorf("Observe(%d): previous bucket bound %d already covers it",
				c.v, BucketBound(c.bucket-1))
		}
	}
}

// TestBucketBoundGolden pins the rendered upper bounds.
func TestBucketBoundGolden(t *testing.T) {
	want := []uint64{0, 1, 3, 7, 15, 31, 63, 127, 255, 511, 1023}
	for i, w := range want {
		if got := BucketBound(i); got != w {
			t.Errorf("BucketBound(%d) = %d, want %d", i, got, w)
		}
	}
	if got := BucketBound(32); got != 1<<32-1 {
		t.Errorf("BucketBound(32) = %d, want %d", got, uint64(1<<32-1))
	}
}

// TestUpdateZeroAlloc pins the hot-path contract: metric updates on
// pre-registered cells are allocation-free.
func TestUpdateZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("test_ops_total", "ops", L("shard", "0"))
	g := reg.Gauge("test_depth", "depth", L("shard", "0"))
	h := reg.Histogram("test_lat", "latency", L("shard", "0"))

	if n := testing.AllocsPerRun(200, func() { ctr.Inc(); ctr.Add(3) }); n != 0 {
		t.Errorf("Counter update allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { g.Set(4.2) }); n != 0 {
		t.Errorf("Gauge.Set allocates %.1f/op, want 0", n)
	}
	var v uint64
	if n := testing.AllocsPerRun(200, func() { h.Observe(v); v += 97 }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op, want 0", n)
	}
}

// TestConcurrentRegisterScrape hammers registration, updates and
// scrapes from many goroutines; run under -race this is the data-race
// proof for the registry lock discipline.
func TestConcurrentRegisterScrape(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writers: register-or-find cells and update them.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := reg.Counter("conc_ops_total", "ops", L("w", fmt.Sprint(w%3)))
				c.Inc()
				h := reg.Histogram("conc_lat", "lat", L("w", fmt.Sprint(w%3)))
				h.Observe(uint64(i))
				reg.Gauge("conc_depth", "d", L("w", fmt.Sprint(w%3))).Set(float64(i))
			}
		}(w)
	}
	// A collector registering mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		reg.RegisterCollector(L("src", "coll"), func(s *Sampler) {
			s.MetricU("conc_sampled_total", 7)
			s.Metric("conc_sampled_gauge", 1.5)
		})
	}()
	// Scrapers.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := PromParse(reg.PromText()); err != nil {
					t.Errorf("mid-flight scrape invalid: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)

	// Final scrape: counts must add up.
	samples, err := PromParse(reg.PromText())
	if err != nil {
		t.Fatalf("final scrape invalid: %v", err)
	}
	var total float64
	for _, s := range samples {
		if s.Name == "conc_ops_total" {
			total += s.Value
		}
	}
	if total != 4*200 {
		t.Errorf("conc_ops_total sums to %.0f, want %d", total, 4*200)
	}
}

// TestPromTextFormat checks the rendered exposition against the
// validator and pins the histogram expansion shape.
func TestPromTextFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fmt_reqs_total", "requests", L("shard", "0")).Add(12)
	reg.Counter("fmt_reqs_total", "requests", L("shard", "1")).Add(30)
	reg.Gauge("fmt_lag", "lag", nil).Set(2.5)
	h := reg.Histogram("fmt_lat", "latency", L("shard", "0"))
	h.Observe(0)
	h.Observe(5)  // bucket 3 (le 7)
	h.Observe(70) // bucket 7 (le 127)

	text := reg.PromText()
	samples, err := PromParse(text)
	if err != nil {
		t.Fatalf("invalid exposition:\n%s\nerr: %v", text, err)
	}

	find := func(name string, labels map[string]string) *PromSample {
		for i := range samples {
			s := &samples[i]
			if s.Name != name {
				continue
			}
			match := true
			for k, v := range labels {
				if s.Labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return s
			}
		}
		return nil
	}

	if s := find("fmt_reqs_total", map[string]string{"shard": "1"}); s == nil || s.Value != 30 {
		t.Errorf("fmt_reqs_total{shard=1}: got %+v, want 30", s)
	}
	if s := find("fmt_lag", nil); s == nil || s.Value != 2.5 {
		t.Errorf("fmt_lag: got %+v, want 2.5", s)
	}
	// Histogram: cumulative buckets at the observed boundaries.
	if s := find("fmt_lat_bucket", map[string]string{"le": "0"}); s == nil || s.Value != 1 {
		t.Errorf("le=0 bucket: got %+v, want 1", s)
	}
	if s := find("fmt_lat_bucket", map[string]string{"le": "7"}); s == nil || s.Value != 2 {
		t.Errorf("le=7 bucket: got %+v, want cumulative 2", s)
	}
	if s := find("fmt_lat_bucket", map[string]string{"le": "127"}); s == nil || s.Value != 3 {
		t.Errorf("le=127 bucket: got %+v, want cumulative 3", s)
	}
	if s := find("fmt_lat_bucket", map[string]string{"le": "+Inf"}); s == nil || s.Value != 3 {
		t.Errorf("+Inf bucket: got %+v, want 3", s)
	}
	if s := find("fmt_lat_sum", nil); s == nil || s.Value != 75 {
		t.Errorf("fmt_lat_sum: got %+v, want 75", s)
	}
	if s := find("fmt_lat_count", nil); s == nil || s.Value != 3 {
		t.Errorf("fmt_lat_count: got %+v, want 3", s)
	}
	// One TYPE line per family.
	if n := strings.Count(text, "# TYPE fmt_reqs_total "); n != 1 {
		t.Errorf("fmt_reqs_total has %d TYPE lines, want 1", n)
	}
	// Determinism: a second render with unchanged cells is identical.
	if text2 := reg.PromText(); text2 != text {
		t.Error("render is not deterministic for fixed cell values")
	}
}

// TestSamplerKindInference pins the "_total" convention the Emit
// bridges rely on.
func TestSamplerKindInference(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterCollector(L("shard", "2"), func(s *Sampler) {
		s.MetricU("inf_calls_total", 41)
		s.MetricU("inf_cur_lag", 9)
	})
	text := reg.PromText()
	if !strings.Contains(text, "# TYPE inf_calls_total counter") {
		t.Errorf("_total not inferred as counter:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE inf_cur_lag gauge") {
		t.Errorf("non-_total not inferred as gauge:\n%s", text)
	}
	if !strings.Contains(text, `inf_calls_total{shard="2"} 41`) {
		t.Errorf("collector labels not applied:\n%s", text)
	}
	// Re-sampling stores absolutes, not increments.
	if _, err := PromParse(reg.PromText()); err != nil {
		t.Fatal(err)
	}
	text = reg.PromText()
	if !strings.Contains(text, `inf_calls_total{shard="2"} 41`) {
		t.Errorf("collector re-sample not absolute:\n%s", text)
	}
}

// TestPromParseRejects exercises the validator's negative space.
func TestPromParseRejects(t *testing.T) {
	bad := []string{
		"no_type_line 3",
		"# TYPE x counter\n1bad_name 3",
		"# TYPE x gauge\nx{l=unquoted} 3",
		"# TYPE x gauge\nx notafloat",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"3\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 2\nh_sum 3",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_count 2\nh_sum 3",
	}
	for _, text := range bad {
		if _, err := PromParse(text); err == nil {
			t.Errorf("accepted invalid exposition:\n%s", text)
		}
	}
}

// TestLabelEscaping round-trips a hostile label value.
func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("esc_g", "g", L("msg", "a\"b\\c\nd")).Set(1)
	samples, err := PromParse(reg.PromText())
	if err != nil {
		t.Fatalf("escaped label broke parsing: %v", err)
	}
	if samples[0].Labels["msg"] != "a\"b\\c\nd" {
		t.Errorf("label round-trip got %q", samples[0].Labels["msg"])
	}
}
