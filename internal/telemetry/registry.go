// Package telemetry is the fleet's unified metrics plane: a registry of
// labeled series (counters, gauges, power-of-two-bucket histograms)
// whose update paths are single atomic operations on pre-registered
// cells — zero allocations, no locks — following the word-API
// discipline of internal/mem. Every stats-bearing subsystem (rb,
// ghumvee, ikb, ipmon, policy, mem arena, vnet, fleet, chaos) feeds the
// registry either through a direct cell (hot-path instrumentation) or
// through a scrape-time collector that samples the subsystem's existing
// atomic Stats() counters — the hot paths those counters live on are
// untouched.
//
// Consistency model (DESIGN.md §11): a scrape holds the registry lock,
// so series sets are stable during rendering, but individual cell reads
// are independent atomic loads — a scrape is a per-cell-consistent,
// not cross-cell-consistent, snapshot, exactly like the Stats()
// surfaces it aggregates.
//
// Naming follows the Prometheus convention: cumulative counters end in
// "_total"; everything else emitted by a collector is a gauge. The
// convention is load-bearing: collector bridges infer the series kind
// from the suffix, so the Emit methods scattered across packages never
// import this one.
package telemetry

import (
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a series family's metric type.
type Kind uint8

// Family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one key="value" pair.
type Label struct {
	Key, Value string
}

// Labels is an ordered label set. Build with L; the rendered form is
// computed once at registration so hot-path updates never format
// strings.
type Labels []Label

// L builds a one-label set; chain with With.
func L(key, value string) Labels { return Labels{{key, value}} }

// With appends a label, returning a new set.
func (ls Labels) With(key, value string) Labels {
	out := make(Labels, 0, len(ls)+1)
	out = append(out, ls...)
	return append(out, Label{key, value})
}

// render formats the label set as {k="v",...}; empty set renders empty.
func (ls Labels) render() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// renderWith formats the label set plus one extra pair (the histogram
// "le" path).
func (ls Labels) renderWith(key, value string) string {
	return append(append(Labels{}, ls...), Label{key, value}).render()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing cell. Add/Inc are one atomic
// RMW; no allocation, no lock.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the cell.
func (c *Counter) Value() uint64 { return c.v.Load() }

// set overwrites the cell (collector bridges sampling an external
// cumulative counter).
func (c *Counter) set(n uint64) { c.v.Store(n) }

// Gauge is a settable cell storing a float64 as its bit pattern. Set is
// one atomic store; no allocation, no lock.
type Gauge struct {
	bits atomic.Uint64
}

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// HistBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket 0 holds
// v == 0 and bucket i (i ≥ 1) holds v in [2^(i-1), 2^i - 1]. The
// rendered upper bound of bucket i is 2^i - 1. 33 buckets cover
// [0, 2^32-1] exactly; larger observations clamp into the last bucket
// (its rendered le is still finite — the +Inf bucket is the count).
const HistBuckets = 33

// Histogram is a power-of-two-bucket latency/size histogram. Observe is
// three atomic RMWs and a bit-length — no allocation, no lock, no
// float math on the hot path.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value (typically nanoseconds or bytes).
func (h *Histogram) Observe(v uint64) {
	i := bits.Len64(v)
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// BucketBound reports bucket i's inclusive upper bound (2^i - 1).
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return uint64(1)<<uint(i) - 1
}

// series is one labeled cell within a family.
type series struct {
	labels string // rendered
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family is one metric name: a kind, a help string and its series.
type family struct {
	name   string
	help   string
	kind   Kind
	series map[string]*series // rendered labels -> cell
	order  []*series          // insertion order; sorted lazily at render
}

func (f *family) get(labels string) *series {
	if s, ok := f.series[labels]; ok {
		return s
	}
	s := &series{labels: labels}
	switch f.kind {
	case KindCounter:
		s.ctr = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = &Histogram{}
	}
	f.series[labels] = s
	f.order = append(f.order, s)
	return s
}

// Collector is a scrape-time callback: it samples a subsystem's counters
// into the registry through the Sampler. Collectors run under the
// registry lock — they must not call registration methods themselves.
type Collector func(s *Sampler)

type collectorEntry struct {
	labels Labels
	fn     Collector
}

// Registry holds the metric families. Registration and scrape take the
// registry lock; the returned cells are stable pointers the hot paths
// update lock-free.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	names      []string // family names; sorted lazily at render
	collectors []collectorEntry
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// familyLocked interns (name, kind); help sticks at first non-empty.
func (r *Registry) familyLocked(name, help string, kind Kind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, series: map[string]*series{}}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	if f.help == "" {
		f.help = help
	}
	return f
}

// Counter registers (or finds) a counter series and returns its cell.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.familyLocked(name, help, KindCounter).get(labels.render()).ctr
}

// Gauge registers (or finds) a gauge series and returns its cell.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.familyLocked(name, help, KindGauge).get(labels.render()).gauge
}

// Histogram registers (or finds) a histogram series and returns its cell.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.familyLocked(name, help, KindHistogram).get(labels.render()).hist
}

// RegisterCollector adds a scrape-time sampler running with the given
// base label set. Each scrape invokes every collector before rendering,
// so collector-fed series always show the sample taken at that scrape.
func (r *Registry) RegisterCollector(labels Labels, fn Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, collectorEntry{labels: labels, fn: fn})
}

// Sampler is the upsert surface handed to collectors at scrape time.
type Sampler struct {
	r      *Registry
	labels Labels
	rendered string
}

// Metric upserts one sample under the collector's label set, inferring
// the kind from the Prometheus naming convention: a "_total" suffix is
// a cumulative counter (the sampled value is stored absolutely),
// anything else is a gauge.
func (s *Sampler) Metric(name string, v float64) {
	if strings.HasSuffix(name, "_total") {
		s.counterLocked(name).set(uint64(v))
		return
	}
	s.gaugeLocked(name).Set(v)
}

// MetricU is Metric for uint64 sources (the Emit convention across the
// stats packages).
func (s *Sampler) MetricU(name string, v uint64) {
	if strings.HasSuffix(name, "_total") {
		s.counterLocked(name).set(v)
		return
	}
	s.gaugeLocked(name).Set(float64(v))
}

// MetricWith upserts one sample under the collector's label set plus
// extra labels — the per-network / per-component refinement path. Kind
// inference follows Metric.
func (s *Sampler) MetricWith(name string, extra Labels, v float64) {
	rendered := append(append(Labels{}, s.labels...), extra...).render()
	if strings.HasSuffix(name, "_total") {
		s.r.familyLocked(name, "", KindCounter).get(rendered).ctr.set(uint64(v))
		return
	}
	s.r.familyLocked(name, "", KindGauge).get(rendered).gauge.Set(v)
}

// Help attaches a help string to a family (first writer wins).
func (s *Sampler) Help(name, help string) {
	s.r.familyLocked(name, help, inferKind(name))
}

func inferKind(name string) Kind {
	if strings.HasSuffix(name, "_total") {
		return KindCounter
	}
	return KindGauge
}

func (s *Sampler) counterLocked(name string) *Counter {
	return s.r.familyLocked(name, "", KindCounter).get(s.rendered).ctr
}

func (s *Sampler) gaugeLocked(name string) *Gauge {
	return s.r.familyLocked(name, "", KindGauge).get(s.rendered).gauge
}

// collectLocked runs every collector; r.mu must be held.
func (r *Registry) collectLocked() {
	for _, ce := range r.collectors {
		ce.fn(&Sampler{r: r, labels: ce.labels, rendered: ce.labels.render()})
	}
}

// WriteProm renders the registry in Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label
// string, histograms expanded into cumulative _bucket/_sum/_count. The
// returned string is deterministic for a fixed set of cell values.
func (r *Registry) WriteProm(b *strings.Builder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectLocked()
	sort.Strings(r.names)
	for _, name := range r.names {
		f := r.families[name]
		if len(f.order) == 0 {
			continue
		}
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.name)
			b.WriteByte(' ')
			b.WriteString(f.help)
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		sort.Slice(f.order, func(i, j int) bool { return f.order[i].labels < f.order[j].labels })
		for _, s := range f.order {
			switch f.kind {
			case KindCounter:
				writeSample(b, f.name, "", s.labels, float64(s.ctr.Value()))
			case KindGauge:
				writeSample(b, f.name, "", s.labels, s.gauge.Value())
			case KindHistogram:
				writeHistogram(b, f.name, s)
			}
		}
	}
}

// PromText renders the registry to a string (the /metrics payload).
func (r *Registry) PromText() string {
	var b strings.Builder
	r.WriteProm(&b)
	return b.String()
}

func writeSample(b *strings.Builder, name, suffix, labels string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// writeHistogram expands a histogram series: cumulative buckets with
// le = 2^i - 1, the +Inf bucket, then _sum and _count.
func writeHistogram(b *strings.Builder, name string, s *series) {
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		n := s.hist.buckets[i].Load()
		cum += n
		if n == 0 && i != HistBuckets-1 {
			continue // sparse rendering: empty interior buckets elided
		}
		writeSample(b, name, "_bucket", spliceLabel(s.labels, "le", formatUint(BucketBound(i))), float64(cum))
	}
	writeSample(b, name, "_bucket", spliceLabel(s.labels, "le", "+Inf"), float64(s.hist.Count()))
	writeSample(b, name, "_sum", s.labels, float64(s.hist.Sum()))
	writeSample(b, name, "_count", s.labels, float64(s.hist.Count()))
}

// spliceLabel inserts key="value" into a rendered label string.
func spliceLabel(rendered, key, value string) string {
	if rendered == "" {
		return "{" + key + `="` + value + `"}`
	}
	return rendered[:len(rendered)-1] + "," + key + `="` + value + `"}`
}

func formatUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// formatFloat renders integers without a fraction (the common case for
// counters) and everything else via strconv-compatible shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		if v < 0 {
			return "-" + formatUint(uint64(-v))
		}
		return formatUint(uint64(v))
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
