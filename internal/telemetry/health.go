// The health model: a JSON document describing each shard's lifecycle
// state and headroom, served by the exporter at /health. The shape
// deliberately mirrors what an external orchestrator needs to make the
// same decisions fleet.Controller makes internally — serving set,
// replication headroom, shed pressure, last verdict.
package telemetry

import "encoding/json"

// ShardHealth is one shard's health summary.
type ShardHealth struct {
	Shard int `json:"shard"`
	// State is the lifecycle state: serving / draining / quarantined /
	// respawning.
	State string `json:"state"`
	Gen   int    `json:"gen"`
	// Policy is the shard's active global relaxation level name.
	Policy string `json:"policy"`
	// MaxLag is the master-ahead replication window; CurLag the live
	// distance to the slowest slave; LagHeadroom the remaining fraction
	// of the window (1.0 = idle, 0.0 = saturated; 1.0 when MaxLag is 0 —
	// a lockstep shard has no window to exhaust).
	MaxLag      int     `json:"max_lag"`
	CurLag      int     `json:"cur_lag"`
	LagHeadroom float64 `json:"lag_headroom"`
	// EpochSize is the divergence-checking window.
	EpochSize int `json:"epoch_size"`
	InFlight  int `json:"in_flight"`
	// LastVerdict is the most recent divergence verdict reason (empty if
	// the shard never diverged).
	LastVerdict string `json:"last_verdict,omitempty"`
	Diverged    bool   `json:"diverged"`
}

// HealthReport is the fleet-wide health document.
type HealthReport struct {
	// Status is "ok" when every shard is Serving, "degraded" otherwise.
	Status string        `json:"status"`
	Shards []ShardHealth `json:"shards"`
	// ShedRate is the fraction of admission attempts shed with
	// ErrOverloaded over the fleet's lifetime.
	ShedRate     float64 `json:"shed_rate"`
	ConnsRouted  uint64  `json:"conns_routed"`
	ConnsRefused uint64  `json:"conns_refused"`
	ConnsShed    uint64  `json:"conns_shed"`
	Handoffs     uint64  `json:"handoffs"`
	Failovers    uint64  `json:"failovers"`
	Recoveries   int     `json:"recoveries"`
}

// JSON renders the report (indented — the /health payload).
func (h HealthReport) JSON() []byte {
	b, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return []byte(`{"status":"error"}`)
	}
	return b
}

// HealthSource supplies the /health document; fleet.Fleet implements it.
type HealthSource interface {
	Health() HealthReport
}
