package mem

import (
	"fmt"
	"strings"
)

// MapsText renders the address space in /proc/<pid>/maps format. hide lists
// region names to omit — GHUMVEE filters the replication buffer and file
// map out of maps reads so their addresses cannot be discovered through
// /proc (§3.1, "ReMon further prevents discovery of the RB through the
// /proc/maps interface").
func (as *AddressSpace) MapsText(hide ...string) string {
	hidden := make(map[string]bool, len(hide))
	for _, h := range hide {
		hidden[h] = true
	}
	var b strings.Builder
	for _, r := range as.Regions() {
		if hidden[r.Name] {
			continue
		}
		fmt.Fprintf(&b, "%012x-%012x %sp %08x 00:00 0", uint64(r.Start), uint64(r.End()), r.Prot, 0)
		if r.Name != "" {
			fmt.Fprintf(&b, "  %s", r.Name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DisjointCodeLayouts verifies the DCL property over a set of address
// spaces: no executable region of one space overlaps an executable region
// of any other. It returns an error naming the first violation. The paper
// relies on DCL to guarantee that no code gadget address is valid in more
// than one replica (§4, citing Volckaert et al. [40]).
func DisjointCodeLayouts(spaces ...*AddressSpace) error {
	type span struct {
		start, end Addr
		owner      int
		name       string
	}
	var code []span
	for i, as := range spaces {
		for _, r := range as.Regions() {
			if r.Prot&ProtExec != 0 {
				code = append(code, span{r.Start, r.End(), i, r.Name})
			}
		}
	}
	for i := 0; i < len(code); i++ {
		for j := i + 1; j < len(code); j++ {
			a, b := code[i], code[j]
			if a.owner == b.owner {
				continue
			}
			if a.start < b.end && b.start < a.end {
				return fmt.Errorf("mem: DCL violation: replica %d %q [%#x,%#x) overlaps replica %d %q [%#x,%#x)",
					a.owner, a.name, uint64(a.start), uint64(a.end),
					b.owner, b.name, uint64(b.start), uint64(b.end))
			}
		}
	}
	return nil
}
