package mem

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
)

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestWordAPIRoundTrip(t *testing.T) {
	seg := NewSharedSegment(1, PageSize)
	seg.StoreU32(4, 0xDEADBEEF)
	if got := seg.LoadU32(4); got != 0xDEADBEEF {
		t.Fatalf("LoadU32 = %#x", got)
	}
	seg.StoreU64(8, 0x0123456789ABCDEF)
	if got := seg.LoadU64(8); got != 0x0123456789ABCDEF {
		t.Fatalf("LoadU64 = %#x", got)
	}
	// Word stores and byte reads see the same memory image.
	var raw [8]byte
	if err := seg.ReadAt(raw[:], 8); err != nil {
		t.Fatal(err)
	}
	if binary.NativeEndian.Uint64(raw[:]) != 0x0123456789ABCDEF {
		t.Fatalf("byte image = %x", raw)
	}
	// And the word-sized ReadAt/WriteAt fast path agrees with the slow
	// byte path (odd offset forces the locked copy).
	if err := seg.WriteAt(raw[:], 17); err != nil {
		t.Fatal(err)
	}
	var back [8]byte
	if err := seg.ReadAt(back[:], 17); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw[:], back[:]) {
		t.Fatalf("unaligned round trip: %x vs %x", raw, back)
	}
}

func TestWordAPIBoundsAndAlignment(t *testing.T) {
	seg := NewSharedSegment(2, PageSize)
	mustPanic(t, "LoadU32 out of range", func() { seg.LoadU32(seg.Size) })
	mustPanic(t, "LoadU32 straddling end", func() { seg.LoadU32(seg.Size - 2) })
	mustPanic(t, "StoreU32 misaligned", func() { seg.StoreU32(2, 1) })
	mustPanic(t, "LoadU64 misaligned", func() { seg.LoadU64(4) })
	mustPanic(t, "StoreU64 out of range", func() { seg.StoreU64(seg.Size, 1) })
	mustPanic(t, "LoadU32 overflowing offset", func() { seg.LoadU32(^uint64(0) - 1) })
}

func TestSliceBounds(t *testing.T) {
	seg := NewSharedSegment(3, PageSize)
	if _, err := seg.Slice(seg.Size-8, 16); err == nil {
		t.Fatal("out-of-range slice accepted")
	}
	if _, err := seg.Slice(^uint64(0), 16); err == nil {
		t.Fatal("overflowing slice accepted")
	}
	s, err := seg.Slice(16, 32)
	if err != nil {
		t.Fatal(err)
	}
	copy(s, "hello")
	var got [5]byte
	if err := seg.ReadAt(got[:], 16); err != nil {
		t.Fatal(err)
	}
	if string(got[:]) != "hello" {
		t.Fatalf("aliased write not visible: %q", got)
	}
	// Views have a clamped capacity: appending must not scribble past the
	// requested window.
	if cap(s) != 32 {
		t.Fatalf("view cap = %d, want 32", cap(s))
	}
}

// TestWordPublishRace exercises the intended publication discipline under
// the race detector: one writer fills an aliased view with plain stores
// and publishes with an atomic release-store; readers poll the word and
// then read the view. Run with -race.
func TestWordPublishRace(t *testing.T) {
	seg := NewSharedSegment(4, PageSize)
	const (
		seqOff  = 0  // published-sequence word
		dataOff = 64 // payload staged per round
		rounds  = 200
	)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for want := uint32(1); want <= rounds; want++ {
				for seg.LoadU32(seqOff) < want {
				}
				view, err := seg.Slice(dataOff, 8)
				if err != nil {
					t.Error(err)
					return
				}
				if got := binary.NativeEndian.Uint64(view); got < uint64(want) {
					t.Errorf("round %d: stale payload %d", want, got)
					return
				}
			}
		}()
	}
	for i := uint32(1); i <= rounds; i++ {
		view, err := seg.Slice(dataOff, 8)
		if err != nil {
			t.Fatal(err)
		}
		binary.NativeEndian.PutUint64(view, uint64(i))
		seg.StoreU32(seqOff, i) // release
	}
	wg.Wait()
}

// TestWordReadAtRace checks that word-sized ReadAt (the kernel's
// futex-word read path) is race-free against concurrent atomic stores.
func TestWordReadAtRace(t *testing.T) {
	seg := NewSharedSegment(5, PageSize)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			seg.StoreU32(128, uint32(i))
		}
	}()
	var word [4]byte
	for i := 0; i < 5000; i++ {
		if err := seg.ReadAt(word[:], 128); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

func TestArenaReuseScrubbed(t *testing.T) {
	const size = 4 * PageSize
	a := AcquireSegment(100, size)
	// Dirty the segment through every write path.
	a.StoreU32(0, 0xFFFFFFFF)
	a.StoreU64(PageSize, ^uint64(0))
	if err := a.WriteAt([]byte{1, 2, 3}, 2*PageSize+1); err != nil {
		t.Fatal(err)
	}
	v, err := a.Slice(3*PageSize, 16)
	if err != nil {
		t.Fatal(err)
	}
	copy(v, "dirty-dirty-dirt")
	before := ArenaSnapshot()
	a.Release()

	b := AcquireSegment(101, size)
	after := ArenaSnapshot()
	if after.Hits != before.Hits+1 {
		// Another size-class user may interleave in -count runs; require
		// at least that OUR release was recorded.
		t.Fatalf("arena hit not recorded: before=%+v after=%+v", before, after)
	}
	if b.ID != 101 {
		t.Fatalf("recycled segment ID = %d", b.ID)
	}
	// A recycled segment must present as zeroed everywhere it was dirty.
	buf := make([]byte, size)
	if err := b.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for i, by := range buf {
		if by != 0 {
			t.Fatalf("recycled segment dirty at offset %d: %#x", i, by)
		}
	}
	b.Release()
}

func TestArenaDoubleReleasePanics(t *testing.T) {
	s := AcquireSegment(200, PageSize)
	s.Release()
	mustPanic(t, "double release", func() { s.Release() })
	// Drain it back out so later tests in this process don't see the
	// pooled-but-panicked segment in an odd state.
	_ = AcquireSegment(201, PageSize)
}

func TestScrubCountsOnlyDirtyChunks(t *testing.T) {
	const size = 64 * dirtyChunkSize // 4 MiB
	s := AcquireSegment(300, size)
	s.StoreU32(0, 1)                   // chunk 0
	s.StoreU64(10*dirtyChunkSize+8, 1) // chunk 10
	snap0 := ArenaSnapshot()
	s.Release()
	snap1 := ArenaSnapshot()
	scrubbed := snap1.ScrubbedBytes - snap0.ScrubbedBytes
	if scrubbed != 2*dirtyChunkSize {
		t.Fatalf("scrubbed %d bytes, want %d (2 chunks)", scrubbed, 2*dirtyChunkSize)
	}
	_ = AcquireSegment(301, size) // drain
}

func TestWordAdd(t *testing.T) {
	seg := NewSharedSegment(3, PageSize)
	if got := seg.AddU32(12, 5); got != 5 {
		t.Fatalf("AddU32 = %d, want 5", got)
	}
	if got := seg.AddU32(12, 3); got != 8 {
		t.Fatalf("AddU32 = %d, want 8", got)
	}
	if got := seg.LoadU32(12); got != 8 {
		t.Fatalf("LoadU32 after adds = %d", got)
	}
	mustPanic(t, "AddU32 misaligned", func() { seg.AddU32(2, 1) })
	mustPanic(t, "AddU32 out of range", func() { seg.AddU32(seg.Size, 1) })
}

// TestWordAddPublishes exercises the arrival-ring pattern: each publisher
// fills a private slot with plain writes, release-stores its per-slot
// sequence word and then joins a shared AddU32 counter; the goroutine that
// observes the counter reach N must see every slot's plain writes.
func TestWordAddPublishes(t *testing.T) {
	const n = 8
	const rounds = 200
	seg := NewSharedSegment(4, PageSize)
	slots := make([]uint64, n)
	var wg sync.WaitGroup
	for r := 1; r <= rounds; r++ {
		got := make(chan uint64, 1)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(idx, round int) {
				defer wg.Done()
				slots[idx] = uint64(round*100 + idx) // plain write
				seg.StoreU32(uint64(64+idx*4), uint32(round))
				if seg.AddU32(0, 1) == n { // last arrival closes the round
					var sum uint64
					for j := 0; j < n; j++ {
						sum += slots[j]
					}
					seg.StoreU32(0, 0)
					got <- sum
				}
			}(i, r)
		}
		wg.Wait()
		var want uint64
		for j := 0; j < n; j++ {
			want += uint64(r*100 + j)
		}
		if sum := <-got; sum != want {
			t.Fatalf("round %d: closing arrival saw %d, want %d", r, sum, want)
		}
	}
}
