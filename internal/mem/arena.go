// The segment arena: a process-wide pool of recycled shared segments.
//
// Profiling the seed showed ~43% of benchmark wall-clock inside
// runtime.memclrNoHeapPointers zeroing a brand-new 16 MiB replication
// buffer for every MVEE construction. The arena removes that: MVEEs
// acquire their RB backing here and release it on Close, and a released
// segment is scrubbed lazily — only the 64 KiB chunks it actually dirtied
// are zeroed — before being handed out again. A recycled segment is
// therefore indistinguishable from a freshly allocated one (the pool-reuse
// test proves it presents as all-zero).
package mem

import "sync"

// arenaMaxPerClass bounds the free list per size class so pathological
// churn across many sizes cannot pin unbounded memory.
const arenaMaxPerClass = 8

// ArenaStats counts arena activity (test and tuning introspection).
type ArenaStats struct {
	// Hits is the number of Acquire calls served from the free list.
	Hits uint64
	// Misses is the number of Acquire calls that allocated fresh memory.
	Misses uint64
	// Releases is the number of segments returned to the arena.
	Releases uint64
	// ScrubbedBytes counts bytes zeroed by lazy scrubbing on release —
	// compare against Releases×segment size to see what full re-zeroing
	// would have cost.
	ScrubbedBytes uint64
}

// Emit reports the snapshot as (metric, value) pairs under the
// telemetry naming convention ("_total" marks cumulative counters).
// Plain func signature so this package never imports the registry.
func (s ArenaStats) Emit(emit func(name string, v uint64)) {
	emit("hits_total", s.Hits)
	emit("misses_total", s.Misses)
	emit("releases_total", s.Releases)
	emit("scrubbed_bytes_total", s.ScrubbedBytes)
}

var (
	arenaMu    sync.Mutex
	arenaFree  = map[uint64][]*SharedSegment{}
	arenaStats ArenaStats
)

// AcquireSegment returns a page-aligned shared segment of the given size,
// reusing a scrubbed pooled segment when one is available. The segment's
// ID is set to id. Pair with Release once every mapping of the segment is
// quiescent.
func AcquireSegment(id int, size uint64) *SharedSegment {
	size = roundUp(size)
	arenaMu.Lock()
	free := arenaFree[size]
	if n := len(free); n > 0 {
		s := free[n-1]
		free[n-1] = nil
		arenaFree[size] = free[:n-1]
		arenaStats.Hits++
		s.pooled = false
		s.ID = id
		arenaMu.Unlock()
		return s
	}
	arenaStats.Misses++
	arenaMu.Unlock()
	s := NewSharedSegment(id, size)
	return s
}

// Release scrubs the segment's dirty chunks and returns it to the arena.
// The caller must guarantee no goroutine will touch the segment again:
// every address-space mapping, writer, reader and parked futex waiter must
// be done with it, and the caller must be the owner from the matching
// Acquire — Release is once per Acquire. Releasing a segment that is
// already sitting in the pool panics; the guard is claimed *before*
// scrubbing so a double release can never zero a segment another owner
// has since acquired out of the free list.
func (s *SharedSegment) Release() {
	arenaMu.Lock()
	if s.pooled {
		arenaMu.Unlock()
		panic("mem: shared segment released twice")
	}
	s.pooled = true
	arenaMu.Unlock()

	scrubbed := s.scrub()

	arenaMu.Lock()
	defer arenaMu.Unlock()
	arenaStats.Releases++
	arenaStats.ScrubbedBytes += scrubbed
	if len(arenaFree[s.Size]) >= arenaMaxPerClass {
		// Dropped on the floor; the GC reclaims it (pooled stays set —
		// the segment is retired, a further Release is still a bug).
		return
	}
	arenaFree[s.Size] = append(arenaFree[s.Size], s)
}

// ArenaSnapshot reports the arena counters.
func ArenaSnapshot() ArenaStats {
	arenaMu.Lock()
	defer arenaMu.Unlock()
	return arenaStats
}
