package mem

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestMapReadWrite(t *testing.T) {
	as := NewAddressSpace(1, 0)
	r, err := as.Map(100, ProtRead|ProtWrite, "test")
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != PageSize {
		t.Fatalf("size = %d, want rounded to %d", r.Size, PageSize)
	}
	msg := []byte("hello world")
	if err := as.Write(r.Start+8, msg); err != nil {
		t.Fatal(err)
	}
	got, err := as.ReadBytes(r.Start+8, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q, want %q", got, msg)
	}
}

func TestUnmappedFault(t *testing.T) {
	as := NewAddressSpace(2, 0)
	if err := as.Write(0xdead000, []byte{1}); !errors.Is(err, ErrFault) {
		t.Fatalf("write to unmapped = %v, want ErrFault", err)
	}
	if _, err := as.ReadBytes(0xdead000, 1); !errors.Is(err, ErrFault) {
		t.Fatalf("read from unmapped = %v, want ErrFault", err)
	}
}

func TestProtectionViolation(t *testing.T) {
	as := NewAddressSpace(3, 0)
	r, err := as.Map(PageSize, ProtRead, "ro")
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Write(r.Start, []byte{1}); !errors.Is(err, ErrPerm) {
		t.Fatalf("write to read-only = %v, want ErrPerm", err)
	}
	if err := as.Protect(r.Start, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(r.Start, []byte{1}); err != nil {
		t.Fatalf("write after mprotect = %v", err)
	}
}

func TestMapFixedOverlap(t *testing.T) {
	as := NewAddressSpace(4, 0)
	if _, err := as.MapFixed(0x10000, PageSize, ProtRead|ProtWrite, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapFixed(0x10000, PageSize, ProtRead, "b"); !errors.Is(err, ErrOverlap) {
		t.Fatalf("overlapping MapFixed = %v, want ErrOverlap", err)
	}
	if _, err := as.MapFixed(0x10000+PageSize, PageSize, ProtRead, "c"); err != nil {
		t.Fatalf("adjacent MapFixed = %v", err)
	}
}

func TestMapFixedUnaligned(t *testing.T) {
	as := NewAddressSpace(4, 0)
	if _, err := as.MapFixed(0x10001, PageSize, ProtRead, "x"); err == nil {
		t.Fatal("unaligned MapFixed succeeded")
	}
}

func TestUnmap(t *testing.T) {
	as := NewAddressSpace(5, 0)
	r, err := as.Map(PageSize, ProtRead|ProtWrite, "gone")
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(r.Start); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(r.Start, []byte{1}); !errors.Is(err, ErrFault) {
		t.Fatalf("write after unmap = %v, want ErrFault", err)
	}
	if err := as.Unmap(r.Start); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("double unmap = %v, want ErrNoRegion", err)
	}
}

func TestBrkGrowth(t *testing.T) {
	as := NewAddressSpace(6, 0)
	b0, err := as.Brk(0)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := as.Brk(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b0+PageSize {
		t.Fatalf("brk after grow = %#x, want %#x", uint64(b1), uint64(b0+PageSize))
	}
	// Heap memory is usable and preserved across growth.
	if err := as.Write(b0, []byte("persist")); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Brk(PageSize); err != nil {
		t.Fatal(err)
	}
	got, err := as.ReadBytes(b0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "persist" {
		t.Fatalf("heap content after growth = %q", got)
	}
}

func TestCrossRegionAccess(t *testing.T) {
	// A read spanning two adjacent regions succeeds; a read into a hole
	// faults.
	as := NewAddressSpace(7, 0)
	a, err := as.MapFixed(0x20000, PageSize, ProtRead|ProtWrite, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapFixed(0x20000+PageSize, PageSize, ProtRead|ProtWrite, "b"); err != nil {
		t.Fatal(err)
	}
	span := make([]byte, 100)
	for i := range span {
		span[i] = byte(i)
	}
	if err := as.Write(a.End()-50, span); err != nil {
		t.Fatal(err)
	}
	got, err := as.ReadBytes(a.End()-50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, span) {
		t.Fatal("cross-region round trip mismatch")
	}
	if err := as.Read(a.End()+PageSize-10, make([]byte, 20)); !errors.Is(err, ErrFault) {
		t.Fatalf("read across hole = %v, want ErrFault", err)
	}
}

func TestSharedSegmentAliasing(t *testing.T) {
	seg := NewSharedSegment(1, PageSize)
	a := NewAddressSpace(8, 0)
	b := NewAddressSpace(9, 1)
	ra, err := a.MapShared(seg, ProtRead|ProtWrite, "shm")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.MapShared(seg, ProtRead|ProtWrite, "shm")
	if err != nil {
		t.Fatal(err)
	}
	if ra.Start == rb.Start {
		t.Log("note: shared mapping landed at the same address in both spaces (allowed but unlikely)")
	}
	if err := a.Write(ra.Start+16, []byte("via-a")); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadBytes(rb.Start+16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "via-a" {
		t.Fatalf("shared read = %q, want via-a", got)
	}
}

func TestMapSharedAtDistinctAddresses(t *testing.T) {
	seg := NewSharedSegment(2, 16*PageSize)
	a := NewAddressSpace(10, 0)
	b := NewAddressSpace(11, 1)
	ra, err := a.MapSharedAt(0x7000_0000, seg, ProtRead|ProtWrite, "rb")
	if err != nil {
		t.Fatal(err)
	}
	rbr, err := b.MapSharedAt(0x7200_0000, seg, ProtRead|ProtWrite, "rb")
	if err != nil {
		t.Fatal(err)
	}
	if ra.Start == rbr.Start {
		t.Fatal("expected distinct fixed addresses")
	}
	if err := a.Write(ra.Start, []byte{42}); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadBytes(rbr.Start, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatal("shared-at mapping does not alias")
	}
}

func TestCrossCopy(t *testing.T) {
	src := NewAddressSpace(12, 0)
	dst := NewAddressSpace(13, 1)
	rs, err := src.Map(PageSize, ProtRead|ProtWrite, "src")
	if err != nil {
		t.Fatal(err)
	}
	rd, err := dst.Map(PageSize, ProtRead|ProtWrite, "dst")
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Write(rs.Start, []byte("replicated")); err != nil {
		t.Fatal(err)
	}
	if err := CrossCopy(dst, rd.Start, src, rs.Start, 10); err != nil {
		t.Fatal(err)
	}
	got, err := dst.ReadBytes(rd.Start, 10)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "replicated" {
		t.Fatalf("CrossCopy got %q", got)
	}
}

func TestASLRLayoutsDiffer(t *testing.T) {
	a := NewAddressSpace(100, 0)
	b := NewAddressSpace(200, 0)
	la, lb := a.Layout(), b.Layout()
	same := 0
	if la.MmapBase == lb.MmapBase {
		same++
	}
	if la.HeapBase == lb.HeapBase {
		same++
	}
	if la.StackBase == lb.StackBase {
		same++
	}
	if la.CodeBase == lb.CodeBase {
		same++
	}
	if same > 1 {
		t.Fatalf("different seeds produced %d/4 identical bases", same)
	}
}

func TestASLRDeterministic(t *testing.T) {
	a := NewAddressSpace(77, 2)
	b := NewAddressSpace(77, 2)
	if a.Layout() != b.Layout() {
		t.Fatal("same seed must give same layout")
	}
}

func TestDisjointCodeLayouts(t *testing.T) {
	a := NewAddressSpace(1, 0)
	b := NewAddressSpace(2, 1)
	if _, err := a.MapFixed(a.Layout().CodeBase, 4*PageSize, ProtRead|ProtExec, "text"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.MapFixed(b.Layout().CodeBase, 4*PageSize, ProtRead|ProtExec, "text"); err != nil {
		t.Fatal(err)
	}
	if err := DisjointCodeLayouts(a, b); err != nil {
		t.Fatalf("DCL slots 0,1 should be disjoint: %v", err)
	}
	// Force a violation: map code in b at a's code base.
	c := NewAddressSpace(3, 0)
	d := NewAddressSpace(4, 0) // same disjoint slot
	ra, err := c.MapFixed(0x6000_0000, PageSize, ProtRead|ProtExec, "text")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.MapFixed(ra.Start, PageSize, ProtRead|ProtExec, "text"); err != nil {
		t.Fatal(err)
	}
	if err := DisjointCodeLayouts(c, d); err == nil {
		t.Fatal("expected DCL violation")
	}
}

func TestDCLSlotsNeverOverlapProperty(t *testing.T) {
	// Property: for any pair of seeds and distinct disjoint indices, the
	// code bases land in non-overlapping slots (given the fixed span).
	f := func(s1, s2 uint64, i1, i2 uint8) bool {
		idx1, idx2 := int(i1%8), int(i2%8)
		if idx1 == idx2 {
			return true
		}
		a := NewAddressSpace(s1, idx1)
		b := NewAddressSpace(s2, idx2)
		ca, cb := a.Layout().CodeBase, b.Layout().CodeBase
		// Each slot is codeSpan wide and slides at most 2^16 pages.
		lo1, hi1 := ca, ca+Addr(1<<20)
		lo2, hi2 := cb, cb+Addr(1<<20)
		return hi1 <= lo2 || hi2 <= lo1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMapsTextHidesRB(t *testing.T) {
	as := NewAddressSpace(14, 0)
	if _, err := as.MapFixed(0x30000, PageSize, ProtRead|ProtWrite, "rb"); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapFixed(0x50000, PageSize, ProtRead|ProtExec, "text"); err != nil {
		t.Fatal(err)
	}
	full := as.MapsText()
	if !strings.Contains(full, "rb") || !strings.Contains(full, "text") {
		t.Fatalf("unfiltered maps missing regions:\n%s", full)
	}
	filtered := as.MapsText("rb")
	if strings.Contains(filtered, "rb") {
		t.Fatalf("filtered maps still shows rb:\n%s", filtered)
	}
	if !strings.Contains(filtered, "text") {
		t.Fatalf("filtered maps lost text region:\n%s", filtered)
	}
}

func TestReadWriteRoundTripProperty(t *testing.T) {
	as := NewAddressSpace(15, 0)
	r, err := as.Map(64*PageSize, ProtRead|ProtWrite, "prop")
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		a := r.Start + Addr(off)
		if uint64(off)+uint64(len(data)) > r.Size {
			return true
		}
		if err := as.Write(a, data); err != nil {
			return false
		}
		got, err := as.ReadBytes(a, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProtString(t *testing.T) {
	if got := (ProtRead | ProtWrite).String(); got != "rw-" {
		t.Fatalf("Prot string = %q, want rw-", got)
	}
	if got := (ProtRead | ProtExec).String(); got != "r-x" {
		t.Fatalf("Prot string = %q, want r-x", got)
	}
	if got := Prot(0).String(); got != "---" {
		t.Fatalf("Prot string = %q, want ---", got)
	}
}

func TestSharedSegmentBounds(t *testing.T) {
	seg := NewSharedSegment(3, PageSize)
	if err := seg.WriteAt(make([]byte, 10), seg.Size-5); !errors.Is(err, ErrFault) {
		t.Fatalf("out-of-bounds WriteAt = %v, want ErrFault", err)
	}
	if err := seg.ReadAt(make([]byte, 10), seg.Size-5); !errors.Is(err, ErrFault) {
		t.Fatalf("out-of-bounds ReadAt = %v, want ErrFault", err)
	}
}
