// Shared memory segments (System V shm) with a zero-copy, low-contention
// access discipline. The replication buffer's whole performance argument
// (§3.2/§3.7: no read-write sharing, no redundant copies) depends on this
// layer: single-word header traffic goes through lock-free atomic loads
// and stores, bulk payload traffic goes through aliased views, and the
// RWMutex survives only as the fallback for unaligned or legacy byte-copy
// access.
//
// Access rules (DESIGN.md §3):
//
//   - LoadU32/StoreU32/LoadU64/StoreU64 are atomic and lock-free. Offsets
//     must be naturally aligned; violations panic (they are program bugs,
//     like out-of-range slice indexing).
//   - Slice returns a view aliasing the backing array. Writers may fill a
//     view only before publishing it through an atomic release-store of a
//     header word; readers may touch a view only after observing that
//     store (acquire-load). That pairing is what makes the mixed
//     plain/atomic traffic race-free.
//   - ReadAt/WriteAt remain for arbitrary-alignment traffic. Aligned
//     word-sized calls are routed through the atomics so that e.g. the
//     kernel's futex-word read never races with a monitor's store.
//
// The word values use the host's native byte order; the simulator, like
// the paper's system, targets x86-64 (little-endian).
package mem

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// dirtyChunkShift selects the dirty-tracking granularity (64 KiB): fine
// enough that a mostly-idle 16 MiB RB scrubs in a few chunks, coarse
// enough that the per-chunk flags stay tiny.
const (
	dirtyChunkShift = 16
	dirtyChunkSize  = uint64(1) << dirtyChunkShift
)

// SharedSegment is memory shared between address spaces (System V shm). All
// mappings of the same segment alias the same backing bytes.
type SharedSegment struct {
	ID   int
	Size uint64
	mu   sync.RWMutex
	// words is the backing allocation; allocating []uint64 guarantees the
	// 8-byte alignment the atomic word API needs. data aliases it.
	words []uint64
	data  []byte
	// dirty flags one word per 64 KiB chunk that has (possibly) been
	// written since the last scrub. The segment arena zeroes only
	// dirty chunks on recycle, so reusing a 16 MiB RB that touched 100 KiB
	// costs two chunk clears, not a 16 MiB memclr.
	dirty []atomic.Uint32
	// pooled marks a segment currently sitting in the arena free list
	// (double-release detector).
	pooled bool
}

// NewSharedSegment allocates a page-aligned shared segment.
func NewSharedSegment(id int, size uint64) *SharedSegment {
	size = roundUp(size)
	s := &SharedSegment{ID: id, Size: size}
	s.words = make([]uint64, size/8)
	if size > 0 {
		s.data = unsafe.Slice((*byte)(unsafe.Pointer(&s.words[0])), size)
	}
	s.dirty = make([]atomic.Uint32, (size+dirtyChunkSize-1)/dirtyChunkSize)
	return s
}

// markDirty records that [off, off+n) may have been written.
func (s *SharedSegment) markDirty(off, n uint64) {
	if n == 0 {
		return
	}
	last := (off + n - 1) >> dirtyChunkShift
	for c := off >> dirtyChunkShift; c <= last; c++ {
		if s.dirty[c].Load() == 0 {
			s.dirty[c].Store(1)
		}
	}
}

// scrub zeroes every dirty chunk and clears the flags, returning the
// number of bytes cleared. Callers must have exclusive access (the arena
// runs it on release, after all users of the segment are done).
func (s *SharedSegment) scrub() uint64 {
	var n uint64
	for i := range s.dirty {
		if s.dirty[i].Load() == 0 {
			continue
		}
		lo := uint64(i) << dirtyChunkShift
		hi := lo + dirtyChunkSize
		if hi > s.Size {
			hi = s.Size
		}
		clear(s.data[lo:hi])
		s.dirty[i].Store(0)
		n += hi - lo
	}
	return n
}

func (s *SharedSegment) checkWord(off, width uint64) {
	if off+width > s.Size || off+width < off {
		panic(fmt.Sprintf("mem: u%d access at %#x out of range (segment %d, size %#x)",
			width*8, off, s.ID, s.Size))
	}
	if off&(width-1) != 0 {
		panic(fmt.Sprintf("mem: misaligned u%d access at %#x (segment %d)", width*8, off, s.ID))
	}
}

// LoadU32 atomically loads the 32-bit word at off. off must be in range
// and 4-byte aligned; violations panic.
func (s *SharedSegment) LoadU32(off uint64) uint32 {
	s.checkWord(off, 4)
	return atomic.LoadUint32((*uint32)(unsafe.Pointer(&s.data[off])))
}

// StoreU32 atomically stores v at off (4-byte aligned, in range). The
// store has release semantics: it publishes every prior plain write (e.g.
// a staged entry header) to any reader that acquire-loads the same word.
func (s *SharedSegment) StoreU32(off uint64, v uint32) {
	s.checkWord(off, 4)
	s.markDirty(off, 4)
	atomic.StoreUint32((*uint32)(unsafe.Pointer(&s.data[off])), v)
}

// AddU32 atomically adds delta to the 32-bit word at off (4-byte aligned,
// in range) and returns the new value. Like StoreU32 it is a release
// operation with respect to prior plain writes; being a read-modify-write
// it additionally observes every write published before the previous
// operation on the same word — the property the GHUMVEE arrival ring's
// "last arrival closes the round" counter relies on.
func (s *SharedSegment) AddU32(off uint64, delta uint32) uint32 {
	s.checkWord(off, 4)
	s.markDirty(off, 4)
	return atomic.AddUint32((*uint32)(unsafe.Pointer(&s.data[off])), delta)
}

// LoadU64 atomically loads the 64-bit word at off (8-byte aligned).
func (s *SharedSegment) LoadU64(off uint64) uint64 {
	s.checkWord(off, 8)
	return atomic.LoadUint64((*uint64)(unsafe.Pointer(&s.data[off])))
}

// StoreU64 atomically stores v at off (8-byte aligned, in range).
func (s *SharedSegment) StoreU64(off uint64, v uint64) {
	s.checkWord(off, 8)
	s.markDirty(off, 8)
	atomic.StoreUint64((*uint64)(unsafe.Pointer(&s.data[off])), v)
}

// Slice returns a view aliasing [off, off+n) of the segment. No locking
// is performed: callers must follow the publication discipline documented
// at the top of this file (fill before an atomic release-store, read after
// the matching acquire-load). The view is conservatively marked dirty.
func (s *SharedSegment) Slice(off uint64, n uint64) ([]byte, error) {
	if off+n > s.Size || off+n < off {
		return nil, ErrFault
	}
	s.markDirty(off, n)
	return s.data[off : off+n : off+n], nil
}

// ReadAt copies from the segment into p. Aligned 4- and 8-byte reads are
// served by the atomic word path (no lock) so that futex-word polling
// never races with monitor stores; everything else takes the read lock.
//
// The multi-word path serializes only against other ReadAt/WriteAt
// callers: a bulk copy whose range overlaps a word under concurrent
// lock-free Store traffic (a partition's writtenSeq, an entry's status)
// is a data race. The RB's protocol never does this — bulk traffic
// touches entry bodies only after the publishing release-store — and
// new callers must follow the same discipline.
func (s *SharedSegment) ReadAt(p []byte, off uint64) error {
	n := uint64(len(p))
	if off+n > s.Size || off+n < off {
		return ErrFault
	}
	switch {
	case n == 4 && off&3 == 0:
		binary.NativeEndian.PutUint32(p, s.LoadU32(off))
		return nil
	case n == 8 && off&7 == 0:
		binary.NativeEndian.PutUint64(p, s.LoadU64(off))
		return nil
	}
	s.mu.RLock()
	copy(p, s.data[off:])
	s.mu.RUnlock()
	return nil
}

// WriteAt copies p into the segment. Aligned word-sized writes go through
// the atomic path; everything else takes the write lock.
func (s *SharedSegment) WriteAt(p []byte, off uint64) error {
	n := uint64(len(p))
	if off+n > s.Size || off+n < off {
		return ErrFault
	}
	switch {
	case n == 4 && off&3 == 0:
		s.StoreU32(off, binary.NativeEndian.Uint32(p))
		return nil
	case n == 8 && off&7 == 0:
		s.StoreU64(off, binary.NativeEndian.Uint64(p))
		return nil
	}
	s.markDirty(off, n)
	s.mu.Lock()
	copy(s.data[off:], p)
	s.mu.Unlock()
	return nil
}
