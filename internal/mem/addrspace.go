// Package mem implements per-process virtual address spaces for the
// simulated kernel: mapped regions with permissions, byte-level load/store,
// cross-address-space copies (the process_vm_readv equivalent GHUMVEE uses
// for argument comparison and result replication), and the layout
// diversification — ASLR plus Disjoint Code Layouts (DCL) — that the paper
// deploys across replicas (§4, "Diversified Replicas").
package mem

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// PageSize is the virtual page granularity. Region sizes and map addresses
// are always page aligned.
const PageSize = 4096

// Addr is a virtual address in a simulated address space.
type Addr uint64

// Prot is a region protection bitmask.
type Prot uint8

// Protection bits.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec
)

func (p Prot) String() string {
	b := []byte("---")
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&ProtExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Errors reported by address-space operations.
var (
	ErrFault     = errors.New("mem: segmentation fault")
	ErrPerm      = errors.New("mem: protection violation")
	ErrOverlap   = errors.New("mem: mapping overlaps existing region")
	ErrNoRegion  = errors.New("mem: no region at address")
	ErrBadLength = errors.New("mem: bad length")
	ErrExhausted = errors.New("mem: address space exhausted")
)

// Region is one mapped range of an address space.
type Region struct {
	Start Addr
	Size  uint64
	Prot  Prot
	Name  string // e.g. "[stack]", "[heap]", "libipmon", "rb"
	data  []byte
	// Shared backing: when non-nil, data aliases a segment shared with
	// other address spaces (System V shm). The simulation uses this for
	// the replication buffer and the file map.
	shared *SharedSegment
}

// End reports the first address past the region.
func (r *Region) End() Addr { return r.Start + Addr(r.Size) }

// Shared reports the shared segment backing this region, or nil for
// private memory. The kernel's futex key resolution uses it: waits on
// shared mappings must match across processes.
func (r *Region) Shared() *SharedSegment { return r.shared }

// AddressSpace is one process's virtual memory: a sorted set of
// non-overlapping regions.
type AddressSpace struct {
	mu      sync.RWMutex
	regions []*Region // sorted by Start
	// mmapBase is the cursor for kernel-chosen mapping addresses,
	// randomised per space by ASLR.
	mmapBase Addr
	brk      Addr // current heap break
	heap     *Region
	layout   Layout
}

// Layout captures the diversified base addresses chosen for one replica.
type Layout struct {
	Seed      uint64
	CodeBase  Addr
	HeapBase  Addr
	StackBase Addr
	MmapBase  Addr
	// DCL guarantees that no code region of this replica overlaps any code
	// region of the replicas it is disjoint from.
	DisjointIndex int // replica index within the DCL partition
}

const (
	userSpaceTop   = Addr(0x7FFF_FFFF_F000)
	defaultMmapLow = Addr(0x7F00_0000_0000)
	codeSpan       = Addr(0x0000_4000_0000) // span reserved per DCL slot
)

// NewAddressSpace creates an address space with a diversified layout drawn
// from seed. disjointIndex selects the DCL code partition (replica i's code
// lives in a slot no other replica's code overlaps).
func NewAddressSpace(seed uint64, disjointIndex int) *AddressSpace {
	r := splitmix(seed)
	layout := Layout{
		Seed:          seed,
		DisjointIndex: disjointIndex,
		// 28 bits of mmap entropy, page aligned.
		MmapBase: defaultMmapLow + Addr(r()%(1<<28))*PageSize,
		// Code: disjoint slot base + up to 1 GiB of ASLR slide inside it.
		CodeBase:  Addr(0x0000_5555_0000) + Addr(disjointIndex+1)*codeSpan + Addr(r()%(1<<16))*PageSize,
		HeapBase:  Addr(0x0000_1000_0000) + Addr(r()%(1<<20))*PageSize,
		StackBase: userSpaceTop - Addr(r()%(1<<20))*PageSize,
	}
	as := &AddressSpace{mmapBase: layout.MmapBase, layout: layout}
	as.brk = layout.HeapBase
	return as
}

func splitmix(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
}

// Layout reports the diversified layout of this space.
func (as *AddressSpace) Layout() Layout { return as.layout }

func roundUp(n uint64) uint64 {
	return (n + PageSize - 1) &^ (PageSize - 1)
}

// findIdx returns the index of the region containing a, or -1.
func (as *AddressSpace) findIdx(a Addr) int {
	i := sort.Search(len(as.regions), func(i int) bool {
		return as.regions[i].End() > a
	})
	if i < len(as.regions) && as.regions[i].Start <= a {
		return i
	}
	return -1
}

// overlaps reports whether [start, start+size) intersects any region.
func (as *AddressSpace) overlaps(start Addr, size uint64) bool {
	end := start + Addr(size)
	for _, r := range as.regions {
		if r.Start < end && start < r.End() {
			return true
		}
	}
	return false
}

func (as *AddressSpace) insert(r *Region) {
	i := sort.Search(len(as.regions), func(i int) bool {
		return as.regions[i].Start >= r.Start
	})
	as.regions = append(as.regions, nil)
	copy(as.regions[i+1:], as.regions[i:])
	as.regions[i] = r
}

// MapFixed maps size bytes at exactly start with the given protection.
func (as *AddressSpace) MapFixed(start Addr, size uint64, prot Prot, name string) (*Region, error) {
	if size == 0 {
		return nil, ErrBadLength
	}
	size = roundUp(size)
	if start%PageSize != 0 {
		return nil, fmt.Errorf("mem: unaligned fixed map at %#x", uint64(start))
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	if as.overlaps(start, size) {
		return nil, ErrOverlap
	}
	r := &Region{Start: start, Size: size, Prot: prot, Name: name, data: make([]byte, size)}
	as.insert(r)
	return r, nil
}

// Map maps size bytes at a kernel-chosen (ASLR-randomised) address.
func (as *AddressSpace) Map(size uint64, prot Prot, name string) (*Region, error) {
	return as.mapAnon(size, prot, name, nil)
}

// mapAnon places a region at a kernel-chosen address. A non-nil seg makes
// it a shared mapping aliasing seg (no private backing is allocated —
// attaching a 16 MiB RB must not cost a 16 MiB memclr).
func (as *AddressSpace) mapAnon(size uint64, prot Prot, name string, seg *SharedSegment) (*Region, error) {
	if size == 0 {
		return nil, ErrBadLength
	}
	size = roundUp(size)
	as.mu.Lock()
	defer as.mu.Unlock()
	start := as.mmapBase
	for tries := 0; tries < 1<<16; tries++ {
		if start+Addr(size) >= userSpaceTop {
			start = defaultMmapLow
		}
		if !as.overlaps(start, size) {
			r := &Region{Start: start, Size: size, Prot: prot, Name: name, shared: seg}
			if seg == nil {
				r.data = make([]byte, size)
			}
			as.insert(r)
			as.mmapBase = start + Addr(size) + PageSize
			return r, nil
		}
		start += Addr(size) + PageSize
	}
	return nil, ErrExhausted
}

// MapShared maps a shared segment at a kernel-chosen address (shmat).
func (as *AddressSpace) MapShared(seg *SharedSegment, prot Prot, name string) (*Region, error) {
	return as.mapAnon(seg.Size, prot, name, seg)
}

// MapSharedAt maps a shared segment at a caller-chosen address. The
// simulation uses this to give each replica a *different* RB address
// (24 bits of entropy per replica, §4 "Manipulating the RB").
func (as *AddressSpace) MapSharedAt(start Addr, seg *SharedSegment, prot Prot, name string) (*Region, error) {
	if seg.Size == 0 {
		return nil, ErrBadLength
	}
	if start%PageSize != 0 {
		return nil, fmt.Errorf("mem: unaligned fixed map at %#x", uint64(start))
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	if as.overlaps(start, seg.Size) {
		return nil, ErrOverlap
	}
	r := &Region{Start: start, Size: seg.Size, Prot: prot, Name: name, shared: seg}
	as.insert(r)
	return r, nil
}

// Unmap removes the region starting exactly at start.
func (as *AddressSpace) Unmap(start Addr) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	for i, r := range as.regions {
		if r.Start == start {
			as.regions = append(as.regions[:i], as.regions[i+1:]...)
			if r == as.heap {
				as.heap = nil
			}
			return nil
		}
	}
	return ErrNoRegion
}

// Protect changes the protection of the region starting at start
// (mprotect on a whole region).
func (as *AddressSpace) Protect(start Addr, prot Prot) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	for _, r := range as.regions {
		if r.Start == start {
			r.Prot = prot
			return nil
		}
	}
	return ErrNoRegion
}

// Brk grows (or queries, with n==0) the heap and returns the new break.
func (as *AddressSpace) Brk(n uint64) (Addr, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	if n == 0 {
		return as.brk, nil
	}
	n = roundUp(n)
	if as.heap == nil {
		r := &Region{
			Start: as.layout.HeapBase,
			Size:  n,
			Prot:  ProtRead | ProtWrite,
			Name:  "[heap]",
			data:  make([]byte, n),
		}
		if as.overlaps(r.Start, r.Size) {
			return 0, ErrOverlap
		}
		as.insert(r)
		as.heap = r
		as.brk = r.End()
		return as.brk, nil
	}
	// Grow in place.
	newSize := as.heap.Size + n
	if as.overlaps(as.heap.End(), n) {
		return 0, ErrOverlap
	}
	grown := make([]byte, newSize)
	copy(grown, as.heap.data)
	as.heap.data = grown
	as.heap.Size = newSize
	as.brk = as.heap.End()
	return as.brk, nil
}

// RegionAt reports the region containing a, or nil.
func (as *AddressSpace) RegionAt(a Addr) *Region {
	as.mu.RLock()
	defer as.mu.RUnlock()
	if i := as.findIdx(a); i >= 0 {
		return as.regions[i]
	}
	return nil
}

// Regions returns a snapshot of all regions sorted by start address.
func (as *AddressSpace) Regions() []*Region {
	as.mu.RLock()
	defer as.mu.RUnlock()
	out := make([]*Region, len(as.regions))
	copy(out, as.regions)
	return out
}

// access performs a bounds- and permission-checked read or write. fn is
// called once per region chunk with the backing slice (or shared segment).
func (as *AddressSpace) access(a Addr, n int, need Prot, fn func(r *Region, off uint64, chunk int) error) error {
	if n < 0 {
		return ErrBadLength
	}
	as.mu.RLock()
	defer as.mu.RUnlock()
	for n > 0 {
		i := as.findIdx(a)
		if i < 0 {
			return fmt.Errorf("%w at %#x", ErrFault, uint64(a))
		}
		r := as.regions[i]
		if r.Prot&need != need {
			return fmt.Errorf("%w at %#x (%s, need %s)", ErrPerm, uint64(a), r.Prot, need)
		}
		off := uint64(a - r.Start)
		chunk := int(r.Size - off)
		if chunk > n {
			chunk = n
		}
		if err := fn(r, off, chunk); err != nil {
			return err
		}
		a += Addr(chunk)
		n -= chunk
	}
	return nil
}

// Read copies len(p) bytes from address a into p.
func (as *AddressSpace) Read(a Addr, p []byte) error {
	got := 0
	return as.access(a, len(p), ProtRead, func(r *Region, off uint64, chunk int) error {
		dst := p[got : got+chunk]
		got += chunk
		if r.shared != nil {
			return r.shared.ReadAt(dst, off)
		}
		copy(dst, r.data[off:])
		return nil
	})
}

// Write copies p to address a.
func (as *AddressSpace) Write(a Addr, p []byte) error {
	done := 0
	return as.access(a, len(p), ProtWrite, func(r *Region, off uint64, chunk int) error {
		src := p[done : done+chunk]
		done += chunk
		if r.shared != nil {
			return r.shared.WriteAt(src, off)
		}
		copy(r.data[off:], src)
		return nil
	})
}

// ReadBytes is a convenience wrapper allocating the destination.
func (as *AddressSpace) ReadBytes(a Addr, n int) ([]byte, error) {
	p := make([]byte, n)
	if err := as.Read(a, p); err != nil {
		return nil, err
	}
	return p, nil
}

// CrossCopy copies n bytes from (srcAS, src) to (dstAS, dst), the
// process_vm_readv/writev equivalent used by GHUMVEE for replication.
func CrossCopy(dstAS *AddressSpace, dst Addr, srcAS *AddressSpace, src Addr, n int) error {
	buf := make([]byte, n)
	if err := srcAS.Read(src, buf); err != nil {
		return err
	}
	return dstAS.Write(dst, buf)
}
