// Package libc is the thin C-library-like layer replica programs are
// written against: it marshals Go values into the replica's simulated
// address space, issues system calls through the thread's (monitored)
// syscall entry, and provides the user-space building blocks the paper's
// workloads need — heap allocation, threads, and record/replay-ordered
// mutexes (§2.3).
//
// Everything a program does through this package flows through the MVEE's
// interposition chain exactly once per syscall, like a real libc.
package libc

import (
	"encoding/binary"
	"fmt"
	"sync"

	"remon/internal/mem"
	"remon/internal/model"
	"remon/internal/rr"
	"remon/internal/vkernel"
)

// Program is replica code: it runs once per replica (per thread for
// spawned threads) against an Env.
type Program func(env *Env)

// ThreadHandle joins a spawned thread.
type ThreadHandle struct {
	wg *sync.WaitGroup
}

// Join waits for the thread to finish.
func (h *ThreadHandle) Join() { h.wg.Wait() }

// NewThreadHandle wraps a WaitGroup as a joinable handle (used by the
// MVEE runtime's Spawn hook).
func NewThreadHandle(wg *sync.WaitGroup) *ThreadHandle { return &ThreadHandle{wg: wg} }

// Hooks is the runtime support the MVEE layer injects.
type Hooks struct {
	// Spawn creates a new logical thread across the replica set and runs
	// fn on it. nil = single-threaded environment.
	Spawn func(parent *Env, fn Program) *ThreadHandle
	// Agent is the record/replay agent ordering user-space sync (§2.3).
	Agent *rr.Agent
	// OnExit runs when the program's main function returns.
	OnExit func(e *Env)
}

// Env is one thread's libc context.
type Env struct {
	T     *vkernel.Thread
	LTID  int
	Hooks *Hooks

	// Replica-shared state (same object across the replica's threads).
	shared *sharedState

	arena    mem.Addr
	arenaEnd mem.Addr
	scratch  mem.Addr // reusable I/O bounce buffer
}

const (
	arenaChunk  = 1 << 20
	scratchSize = 1 << 16
)

type sharedState struct {
	mu      sync.Mutex
	mutexID uint64
}

// NewEnv creates the root Env for a replica's main thread.
func NewEnv(t *vkernel.Thread, ltid int, hooks *Hooks) *Env {
	if hooks == nil {
		hooks = &Hooks{}
	}
	return &Env{T: t, LTID: ltid, Hooks: hooks, shared: &sharedState{}}
}

// ChildEnv derives an Env for a spawned thread.
func (e *Env) ChildEnv(t *vkernel.Thread, ltid int) *Env {
	return &Env{T: t, LTID: ltid, Hooks: e.Hooks, shared: e.shared}
}

// ErrKilled is panicked (and recovered by the MVEE runner) when the
// thread was terminated underneath the program — the divergence-shutdown
// path, where GHUMVEE kills all replicas.
var ErrKilled = fmt.Errorf("libc: thread killed")

// sys issues a syscall and unwinds the program if the thread is dead.
func (e *Env) sys(nr int, args ...uint64) vkernel.Result {
	r := e.T.Syscall(nr, args...)
	if r.Errno == vkernel.ESRCH || (r.Errno == vkernel.EPERM && e.T.Exited()) {
		panic(ErrKilled)
	}
	return r
}

// --- Memory ---

// Alloc reserves n bytes of replica memory (bump allocator over mmap'd
// arenas; arena exhaustion triggers a real mmap syscall).
func (e *Env) Alloc(n int) mem.Addr {
	need := mem.Addr((n + 15) &^ 15)
	if e.arena == 0 || e.arena+need > e.arenaEnd {
		size := uint64(arenaChunk)
		if uint64(need) > size {
			size = uint64(need)
		}
		r := e.sys(vkernel.SysMmap, 0, size, 0x3, vkernel.MapAnonymous|vkernel.MapPrivate, 0, 0)
		if !r.Ok() {
			panic(fmt.Sprintf("libc: mmap arena: %v", r.Errno))
		}
		e.arena = mem.Addr(r.Val)
		e.arenaEnd = e.arena + mem.Addr(size)
	}
	a := e.arena
	e.arena += need
	return a
}

// WriteBytes stores b at addr.
func (e *Env) WriteBytes(a mem.Addr, b []byte) {
	if err := e.T.Proc.Mem.Write(a, b); err != nil {
		panic("libc: write: " + err.Error())
	}
}

// ReadBytes loads n bytes at addr.
func (e *Env) ReadBytes(a mem.Addr, n int) []byte {
	b, err := e.T.Proc.Mem.ReadBytes(a, n)
	if err != nil {
		panic("libc: read: " + err.Error())
	}
	return b
}

// CString stores a NUL-terminated string and returns its address.
func (e *Env) CString(s string) mem.Addr {
	a := e.Alloc(len(s) + 1)
	e.WriteBytes(a, append([]byte(s), 0))
	return a
}

// scratchBuf returns the thread's bounce buffer (>= scratchSize bytes).
func (e *Env) scratchBuf() mem.Addr {
	if e.scratch == 0 {
		e.scratch = e.Alloc(scratchSize)
	}
	return e.scratch
}

// --- Files ---

// Open opens path.
func (e *Env) Open(path string, flags, mode int) (int, vkernel.Errno) {
	r := e.sys(vkernel.SysOpen, uint64(e.CString(path)), uint64(flags), uint64(mode))
	return int(r.Val), r.Errno
}

// Close closes fd.
func (e *Env) Close(fd int) vkernel.Errno {
	return e.sys(vkernel.SysClose, uint64(fd)).Errno
}

// Read reads up to len(buf) bytes into buf.
func (e *Env) Read(fd int, buf []byte) (int, vkernel.Errno) {
	n := len(buf)
	if n > scratchSize {
		n = scratchSize
	}
	s := e.scratchBuf()
	r := e.sys(vkernel.SysRead, uint64(fd), uint64(s), uint64(n))
	if !r.Ok() {
		return 0, r.Errno
	}
	got := int(r.Val)
	if got > 0 {
		copy(buf, e.ReadBytes(s, got))
	}
	return got, 0
}

// Write writes data to fd.
func (e *Env) Write(fd int, data []byte) (int, vkernel.Errno) {
	total := 0
	for len(data) > 0 {
		chunk := data
		if len(chunk) > scratchSize {
			chunk = chunk[:scratchSize]
		}
		s := e.scratchBuf()
		e.WriteBytes(s, chunk)
		r := e.sys(vkernel.SysWrite, uint64(fd), uint64(s), uint64(len(chunk)))
		if !r.Ok() {
			if total > 0 {
				return total, 0
			}
			return 0, r.Errno
		}
		total += int(r.Val)
		data = data[r.Val:]
		if int(r.Val) < len(chunk) {
			break
		}
	}
	return total, 0
}

// Pread reads at an explicit offset.
func (e *Env) Pread(fd int, buf []byte, off int64) (int, vkernel.Errno) {
	n := len(buf)
	if n > scratchSize {
		n = scratchSize
	}
	s := e.scratchBuf()
	r := e.sys(vkernel.SysPread64, uint64(fd), uint64(s), uint64(n), uint64(off))
	if !r.Ok() {
		return 0, r.Errno
	}
	copy(buf, e.ReadBytes(s, int(r.Val)))
	return int(r.Val), 0
}

// Lseek repositions fd.
func (e *Env) Lseek(fd int, off int64, whence int) (int64, vkernel.Errno) {
	r := e.sys(vkernel.SysLseek, uint64(fd), uint64(off), uint64(whence))
	return int64(r.Val), r.Errno
}

// Stat describes path.
type Stat struct {
	Ino  uint64
	Size int64
	Mode uint32
	Type uint32
}

// Stat stats path.
func (e *Env) Stat(path string) (Stat, vkernel.Errno) {
	buf := e.Alloc(vkernel.StatBufSize)
	r := e.sys(vkernel.SysStat, uint64(e.CString(path)), uint64(buf))
	if !r.Ok() {
		return Stat{}, r.Errno
	}
	raw := e.ReadBytes(buf, vkernel.StatBufSize)
	return Stat{
		Ino:  binary.LittleEndian.Uint64(raw[0:]),
		Size: int64(binary.LittleEndian.Uint64(raw[8:])),
		Mode: binary.LittleEndian.Uint32(raw[16:]),
		Type: binary.LittleEndian.Uint32(raw[20:]),
	}, 0
}

// Access checks path existence.
func (e *Env) Access(path string) vkernel.Errno {
	return e.sys(vkernel.SysAccess, uint64(e.CString(path)), 0).Errno
}

// Mkdir creates a directory.
func (e *Env) Mkdir(path string, mode int) vkernel.Errno {
	return e.sys(vkernel.SysMkdir, uint64(e.CString(path)), uint64(mode)).Errno
}

// Unlink removes path.
func (e *Env) Unlink(path string) vkernel.Errno {
	return e.sys(vkernel.SysUnlink, uint64(e.CString(path))).Errno
}

// Fsync flushes fd.
func (e *Env) Fsync(fd int) vkernel.Errno {
	return e.sys(vkernel.SysFsync, uint64(fd)).Errno
}

// Pipe creates a pipe, returning (rfd, wfd).
func (e *Env) Pipe() (int, int, vkernel.Errno) {
	out := e.Alloc(8)
	r := e.sys(vkernel.SysPipe, uint64(out))
	if !r.Ok() {
		return -1, -1, r.Errno
	}
	raw := e.ReadBytes(out, 8)
	return int(binary.LittleEndian.Uint32(raw[0:])), int(binary.LittleEndian.Uint32(raw[4:])), 0
}

// Dup duplicates fd.
func (e *Env) Dup(fd int) (int, vkernel.Errno) {
	r := e.sys(vkernel.SysDup, uint64(fd))
	return int(r.Val), r.Errno
}

// SetNonblock toggles O_NONBLOCK via fcntl.
func (e *Env) SetNonblock(fd int, v bool) vkernel.Errno {
	var fl uint64
	if v {
		fl = vkernel.ONonblock
	}
	return e.sys(vkernel.SysFcntl, uint64(fd), vkernel.FSetFL, fl).Errno
}

// --- Network ---

// Socket creates a stream socket.
func (e *Env) Socket() (int, vkernel.Errno) {
	r := e.sys(vkernel.SysSocket, 2, 1, 0)
	return int(r.Val), r.Errno
}

// Bind binds fd to addr ("host:port").
func (e *Env) Bind(fd int, addr string) vkernel.Errno {
	return e.sys(vkernel.SysBind, uint64(fd), uint64(e.CString(addr)), uint64(len(addr))).Errno
}

// Listen starts listening.
func (e *Env) Listen(fd, backlog int) vkernel.Errno {
	return e.sys(vkernel.SysListen, uint64(fd), uint64(backlog)).Errno
}

// Accept accepts a connection, returning the connection fd.
func (e *Env) Accept(fd int) (int, vkernel.Errno) {
	r := e.sys(vkernel.SysAccept, uint64(fd), 0, 0)
	return int(r.Val), r.Errno
}

// Connect connects fd to addr.
func (e *Env) Connect(fd int, addr string) vkernel.Errno {
	return e.sys(vkernel.SysConnect, uint64(fd), uint64(e.CString(addr)), uint64(len(addr))).Errno
}

// Send writes data on a socket (sendto).
func (e *Env) Send(fd int, data []byte) (int, vkernel.Errno) {
	s := e.scratchBuf()
	n := len(data)
	if n > scratchSize {
		n = scratchSize
	}
	e.WriteBytes(s, data[:n])
	r := e.sys(vkernel.SysSendto, uint64(fd), uint64(s), uint64(n), 0, 0, 0)
	return int(r.Val), r.Errno
}

// Recv reads from a socket (recvfrom).
func (e *Env) Recv(fd int, buf []byte) (int, vkernel.Errno) {
	s := e.scratchBuf()
	n := len(buf)
	if n > scratchSize {
		n = scratchSize
	}
	r := e.sys(vkernel.SysRecvfrom, uint64(fd), uint64(s), uint64(n), 0, 0, 0)
	if !r.Ok() {
		return 0, r.Errno
	}
	copy(buf, e.ReadBytes(s, int(r.Val)))
	return int(r.Val), 0
}

// Shutdown closes a socket direction.
func (e *Env) Shutdown(fd int) vkernel.Errno {
	return e.sys(vkernel.SysShutdown, uint64(fd), 2).Errno
}

// --- epoll ---

// EpollEvent mirrors the kernel's epoll_event.
type EpollEvent struct {
	Events uint32
	Data   uint64
}

// EpollCreate makes an epoll instance.
func (e *Env) EpollCreate() (int, vkernel.Errno) {
	r := e.sys(vkernel.SysEpollCreate1, 0)
	return int(r.Val), r.Errno
}

// EpollCtl manipulates the interest list.
func (e *Env) EpollCtl(epfd, op, fd int, ev EpollEvent) vkernel.Errno {
	a := e.Alloc(vkernel.EpollEventSize)
	raw := make([]byte, vkernel.EpollEventSize)
	binary.LittleEndian.PutUint32(raw[0:], ev.Events)
	binary.LittleEndian.PutUint64(raw[8:], ev.Data)
	e.WriteBytes(a, raw)
	return e.sys(vkernel.SysEpollCtl, uint64(epfd), uint64(op), uint64(fd), uint64(a)).Errno
}

// EpollWait waits for events (timeout in ms; -1 blocks).
func (e *Env) EpollWait(epfd int, events []EpollEvent, timeout int) (int, vkernel.Errno) {
	maxEv := len(events)
	if maxEv == 0 {
		return 0, vkernel.EINVAL
	}
	a := e.scratchBuf()
	r := e.sys(vkernel.SysEpollWait, uint64(epfd), uint64(a), uint64(maxEv), uint64(uint32(int32(timeout))))
	if !r.Ok() {
		return 0, r.Errno
	}
	n := int(r.Val)
	raw := e.ReadBytes(a, n*vkernel.EpollEventSize)
	for i := 0; i < n; i++ {
		events[i].Events = binary.LittleEndian.Uint32(raw[i*vkernel.EpollEventSize:])
		events[i].Data = binary.LittleEndian.Uint64(raw[i*vkernel.EpollEventSize+8:])
	}
	return n, 0
}

// --- Time, identity, compute ---

// Getpid returns the (replicated) process id.
func (e *Env) Getpid() int {
	return int(e.sys(vkernel.SysGetpid).Val)
}

// TimeNow returns the current virtual time via clock_gettime.
func (e *Env) TimeNow() model.Duration {
	out := e.Alloc(8)
	r := e.sys(vkernel.SysClockGettime, 0, uint64(out))
	if !r.Ok() {
		return 0
	}
	return model.Duration(binary.LittleEndian.Uint64(e.ReadBytes(out, 8)))
}

// Sleep advances virtual time via nanosleep.
func (e *Env) Sleep(d model.Duration) {
	req := e.Alloc(8)
	var raw [8]byte
	binary.LittleEndian.PutUint64(raw[:], uint64(d))
	e.WriteBytes(req, raw[:])
	e.sys(vkernel.SysNanosleep, uint64(req), 0)
}

// Compute models pure user-space CPU work: it advances the thread's
// virtual clock without entering the kernel. Workload profiles are built
// from Compute + syscall mixes.
func (e *Env) Compute(d model.Duration) {
	e.T.Clock.Advance(d)
}

// Exit terminates the thread via exit_group.
func (e *Env) Exit(code int) {
	e.sys(vkernel.SysExitGroup, uint64(code))
}

// --- Threads and synchronisation ---

// Spawn starts fn on a new logical thread across the replica set.
func (e *Env) Spawn(fn Program) *ThreadHandle {
	if e.Hooks.Spawn == nil {
		panic("libc: Spawn without MVEE hooks")
	}
	if e.Hooks.Agent != nil {
		e.Hooks.Agent.Sync(e.T, e.LTID, uint64(e.LTID)<<32|0xFEED, rr.OpSpawn)
	}
	return e.Hooks.Spawn(e, fn)
}

// Mutex is a user-space lock whose acquisition order is recorded by the
// master's replay agent and replayed by slaves (§2.3). The futex syscall
// it issues under contention is what the NONSOCKET_RO conditional policy
// of Table 1 exempts.
type Mutex struct {
	id   uint64
	word mem.Addr
	mu   sync.Mutex
}

// NewMutex allocates a mutex backed by a futex word in replica memory.
func (e *Env) NewMutex() *Mutex {
	e.shared.mu.Lock()
	e.shared.mutexID++
	id := e.shared.mutexID
	e.shared.mu.Unlock()
	return &Mutex{id: id, word: e.Alloc(4)}
}

// Lock acquires the mutex in replay order.
//
// No syscall is issued here even under contention: whether TryLock
// succeeds depends on host scheduling, and an input-dependent futex
// syscall would desynchronise the replicas' syscall sequences — the exact
// divergence §2.3's agent exists to prevent. Programs that want futex
// syscall pressure (the Table 1 conditional path) emit it explicitly with
// FutexPing.
func (m *Mutex) Lock(e *Env) {
	if e.Hooks.Agent != nil {
		e.Hooks.Agent.Sync(e.T, e.LTID, m.id, rr.OpLock)
	}
	m.mu.Lock()
}

// FutexPing issues one deterministic futex syscall against the mutex's
// futex word (FUTEX_WAIT with a mismatching value returns EAGAIN
// immediately). Workload profiles use it to generate the futex densities
// the paper's benchmarks exhibit.
func (m *Mutex) FutexPing(e *Env) {
	e.sys(vkernel.SysFutex, uint64(m.word), vkernel.FutexWait, 1)
}

// Unlock releases the mutex.
func (m *Mutex) Unlock(e *Env) {
	if e.Hooks.Agent != nil {
		e.Hooks.Agent.Sync(e.T, e.LTID, m.id, rr.OpUnlock)
	}
	m.mu.Unlock()
}
