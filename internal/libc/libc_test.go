package libc

import (
	"bytes"
	"sync"
	"testing"

	"remon/internal/model"
	"remon/internal/vkernel"
	"remon/internal/vnet"
)

func newEnv(t *testing.T) *Env {
	t.Helper()
	k := vkernel.New(vnet.New(vnet.Loopback))
	p := k.NewProcess("libc-test", 5, 0)
	return NewEnv(p.NewThread(nil), 0, nil)
}

func TestFileRoundTrip(t *testing.T) {
	e := newEnv(t)
	fd, errno := e.Open("/tmp/f", vkernel.OCreat|vkernel.ORdwr, 0o644)
	if errno != 0 {
		t.Fatalf("open: %v", errno)
	}
	n, errno := e.Write(fd, []byte("abcdef"))
	if errno != 0 || n != 6 {
		t.Fatalf("write = %d, %v", n, errno)
	}
	if _, errno := e.Lseek(fd, 0, vkernel.SeekSet); errno != 0 {
		t.Fatalf("lseek: %v", errno)
	}
	buf := make([]byte, 10)
	n, errno = e.Read(fd, buf)
	if errno != 0 || string(buf[:n]) != "abcdef" {
		t.Fatalf("read = %q, %v", buf[:n], errno)
	}
	if errno := e.Close(fd); errno != 0 {
		t.Fatalf("close: %v", errno)
	}
}

func TestLargeWriteChunks(t *testing.T) {
	// Writes above the scratch size must chunk transparently.
	e := newEnv(t)
	fd, _ := e.Open("/tmp/big", vkernel.OCreat|vkernel.ORdwr, 0o644)
	big := bytes.Repeat([]byte{0xAB}, 200_000)
	n, errno := e.Write(fd, big)
	if errno != 0 || n != len(big) {
		t.Fatalf("big write = %d, %v", n, errno)
	}
	st, errno := e.Stat("/tmp/big")
	if errno != 0 || st.Size != int64(len(big)) {
		t.Fatalf("stat = %+v, %v", st, errno)
	}
}

func TestStatAndAccess(t *testing.T) {
	e := newEnv(t)
	e.T.Proc.Kernel.FS.WriteFile("/etc/present", []byte("xy"), 0o644)
	st, errno := e.Stat("/etc/present")
	if errno != 0 || st.Size != 2 {
		t.Fatalf("stat = %+v, %v", st, errno)
	}
	if errno := e.Access("/etc/present"); errno != 0 {
		t.Fatalf("access: %v", errno)
	}
	if errno := e.Access("/etc/absent"); errno != vkernel.ENOENT {
		t.Fatalf("access missing = %v", errno)
	}
	if _, errno := e.Stat("/etc/absent"); errno != vkernel.ENOENT {
		t.Fatalf("stat missing = %v", errno)
	}
}

func TestPipeHelpers(t *testing.T) {
	e := newEnv(t)
	rfd, wfd, errno := e.Pipe()
	if errno != 0 {
		t.Fatalf("pipe: %v", errno)
	}
	e.Write(wfd, []byte("through"))
	buf := make([]byte, 16)
	n, errno := e.Read(rfd, buf)
	if errno != 0 || string(buf[:n]) != "through" {
		t.Fatalf("pipe read = %q, %v", buf[:n], errno)
	}
}

func TestSocketHelpers(t *testing.T) {
	e := newEnv(t)
	lfd, errno := e.Socket()
	if errno != 0 {
		t.Fatalf("socket: %v", errno)
	}
	if errno := e.Bind(lfd, "svc:1"); errno != 0 {
		t.Fatalf("bind: %v", errno)
	}
	if errno := e.Listen(lfd, 8); errno != 0 {
		t.Fatalf("listen: %v", errno)
	}

	k := e.T.Proc.Kernel
	peer := NewEnv(k.NewProcess("peer", 6, 1).NewThread(nil), 0, nil)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cfd, errno := peer.Socket()
		if errno != 0 {
			t.Errorf("peer socket: %v", errno)
			return
		}
		if errno := peer.Connect(cfd, "svc:1"); errno != 0 {
			t.Errorf("connect: %v", errno)
			return
		}
		peer.Send(cfd, []byte("ping"))
		buf := make([]byte, 8)
		n, errno := peer.Recv(cfd, buf)
		if errno != 0 || string(buf[:n]) != "pong" {
			t.Errorf("peer recv = %q, %v", buf[:n], errno)
		}
	}()

	conn, errno := e.Accept(lfd)
	if errno != 0 {
		t.Fatalf("accept: %v", errno)
	}
	buf := make([]byte, 8)
	n, errno := e.Recv(conn, buf)
	if errno != 0 || string(buf[:n]) != "ping" {
		t.Fatalf("server recv = %q, %v", buf[:n], errno)
	}
	e.Send(conn, []byte("pong"))
	wg.Wait()
}

func TestEpollHelpers(t *testing.T) {
	e := newEnv(t)
	rfd, wfd, _ := e.Pipe()
	epfd, errno := e.EpollCreate()
	if errno != 0 {
		t.Fatalf("epoll_create: %v", errno)
	}
	if errno := e.EpollCtl(epfd, vkernel.EpollCtlAdd, rfd, EpollEvent{Events: vkernel.EpollIn, Data: 777}); errno != 0 {
		t.Fatalf("epoll_ctl: %v", errno)
	}
	events := make([]EpollEvent, 4)
	n, errno := e.EpollWait(epfd, events, 0)
	if errno != 0 || n != 0 {
		t.Fatalf("empty epoll_wait = %d, %v", n, errno)
	}
	e.Write(wfd, []byte("!"))
	n, errno = e.EpollWait(epfd, events, -1)
	if errno != 0 || n != 1 || events[0].Data != 777 {
		t.Fatalf("epoll_wait = %d %+v %v", n, events[0], errno)
	}
}

func TestTimeAndCompute(t *testing.T) {
	e := newEnv(t)
	t0 := e.TimeNow()
	e.Compute(5 * model.Millisecond)
	t1 := e.TimeNow()
	if t1-t0 < 5*model.Millisecond {
		t.Fatalf("Compute advanced only %v", t1-t0)
	}
	e.Sleep(2 * model.Millisecond)
	if e.TimeNow()-t1 < 2*model.Millisecond {
		t.Fatal("Sleep did not advance virtual time")
	}
}

func TestGetpid(t *testing.T) {
	e := newEnv(t)
	if e.Getpid() != e.T.Proc.PID {
		t.Fatal("getpid mismatch")
	}
}

func TestAllocGrowsArena(t *testing.T) {
	e := newEnv(t)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		a := e.Alloc(64 * 1024)
		if seen[uint64(a)] {
			t.Fatal("allocator returned duplicate address")
		}
		seen[uint64(a)] = true
		e.WriteBytes(a, []byte{1}) // must be mapped
	}
}

func TestCString(t *testing.T) {
	e := newEnv(t)
	a := e.CString("hello")
	got := e.ReadBytes(a, 6)
	if string(got) != "hello\x00" {
		t.Fatalf("CString stored %q", got)
	}
}

func TestSetNonblock(t *testing.T) {
	e := newEnv(t)
	rfd, _, _ := e.Pipe()
	if errno := e.SetNonblock(rfd, true); errno != 0 {
		t.Fatalf("SetNonblock: %v", errno)
	}
	buf := make([]byte, 4)
	if _, errno := e.Read(rfd, buf); errno != vkernel.EAGAIN {
		t.Fatalf("nonblocking read = %v, want EAGAIN", errno)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	e := newEnv(t)
	mu := e.NewMutex()
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			we := e.ChildEnv(e.T.Proc.NewThread(e.T), 1)
			for i := 0; i < 200; i++ {
				mu.Lock(we)
				counter++
				mu.Unlock(we)
			}
		}()
	}
	wg.Wait()
	if counter != 1600 {
		t.Fatalf("counter = %d, want 1600", counter)
	}
}

func TestFutexPingIssuesSyscall(t *testing.T) {
	e := newEnv(t)
	mu := e.NewMutex() // may mmap an arena
	before := e.T.Proc.Kernel.UserSyscalls()
	mu.FutexPing(e)
	if e.T.Proc.Kernel.UserSyscalls() != before+1 {
		t.Fatal("FutexPing issued no syscall")
	}
}

func TestKilledThreadPanicsErrKilled(t *testing.T) {
	e := newEnv(t)
	e.T.ExitThread(0)
	defer func() {
		if r := recover(); r != ErrKilled {
			t.Fatalf("recovered %v, want ErrKilled", r)
		}
	}()
	e.Getpid()
}

func TestSpawnWithoutHooksPanics(t *testing.T) {
	e := newEnv(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn without hooks did not panic")
		}
	}()
	e.Spawn(func(env *Env) {})
}

func TestUnlinkMkdirFsyncDup(t *testing.T) {
	e := newEnv(t)
	if errno := e.Mkdir("/tmp/dir", 0o755); errno != 0 {
		t.Fatalf("mkdir: %v", errno)
	}
	fd, _ := e.Open("/tmp/dir/file", vkernel.OCreat|vkernel.ORdwr, 0o644)
	if errno := e.Fsync(fd); errno != 0 {
		t.Fatalf("fsync: %v", errno)
	}
	dupFd, errno := e.Dup(fd)
	if errno != 0 || dupFd == fd {
		t.Fatalf("dup = %d, %v", dupFd, errno)
	}
	e.Close(fd)
	e.Close(dupFd)
	if errno := e.Unlink("/tmp/dir/file"); errno != 0 {
		t.Fatalf("unlink: %v", errno)
	}
	if errno := e.Access("/tmp/dir/file"); errno != vkernel.ENOENT {
		t.Fatal("file survived unlink")
	}
}

func TestPread(t *testing.T) {
	e := newEnv(t)
	fd, _ := e.Open("/tmp/pr", vkernel.OCreat|vkernel.ORdwr, 0o644)
	e.Write(fd, []byte("0123456789"))
	buf := make([]byte, 3)
	n, errno := e.Pread(fd, buf, 4)
	if errno != 0 || n != 3 || string(buf) != "456" {
		t.Fatalf("pread = %d %q %v", n, buf, errno)
	}
}
