// Package ipmon implements IP-MON, ReMon's in-process monitor (§3): the
// component loaded into every replica that replicates unmonitored system
// calls through the shared replication buffer without cross-process
// monitoring.
//
// Each supported syscall has a four-phase handler in the style of the
// paper's C macros (Listing 1):
//
//	MAYBE_CHECKED — decide, against the active relaxation policy and the
//	                file map, whether the call must be forwarded to
//	                GHUMVEE after all;
//	CALCSIZE      — compute the worst-case replication buffer space;
//	PRECALL       — master: log call number, arguments and deep-copied
//	                input buffers into the RB; slave: compare its own
//	                arguments against the master's record (divergence =>
//	                intentional crash);
//	POSTCALL      — master: publish results; slave: wait (spin or futex)
//	                and copy the results into its own buffers.
//
// Most handlers are generated from the sysdesc table; the interesting ones
// (read, write, epoll_ctl, epoll_wait) are hand-written below in the shape
// of Listing 1.
package ipmon

import (
	"remon/internal/fdmap"
	"remon/internal/mem"
	"remon/internal/policy"
	"remon/internal/sysdesc"
	"remon/internal/vkernel"
)

// Handler is the four-phase description of one fast-path syscall.
type Handler struct {
	Nr   int
	Desc *sysdesc.Desc

	// MaybeChecked reports whether the call must be monitored by GHUMVEE
	// under the active policy (true = forward). nil = never checked.
	MaybeChecked func(ip *IPMon, t *vkernel.Thread, c *vkernel.Call) bool

	// PreSide runs in every replica before execution/abort — used by
	// epoll_ctl to register this replica's cookie in the shadow map.
	PreSide func(ip *IPMon, t *vkernel.Thread, c *vkernel.Call)

	// GatherIn deep-copies the input buffers for the RB (master) or for
	// comparison (slave).
	GatherIn func(ip *IPMon, t *vkernel.Thread, c *vkernel.Call) []byte

	// OutCap reserves RB space for results (CALCSIZE).
	OutCap func(ip *IPMon, c *vkernel.Call) int

	// GatherOut reads the master's output buffers after the call.
	GatherOut func(ip *IPMon, t *vkernel.Thread, c *vkernel.Call, r vkernel.Result) []byte

	// ApplyOut writes the replicated output into the slave's own buffers.
	ApplyOut func(ip *IPMon, t *vkernel.Thread, c *vkernel.Call, out []byte, r vkernel.Result)

	// RegMask selects the scalar arguments compared between master and
	// slave (bit i = compare Args[i]).
	RegMask uint8

	// MasterOnly: only the master executes (MASTERCALL); slaves abort and
	// consume replicated results.
	MasterOnly bool
}

// frame encoding for multi-buffer payloads: u32 length + bytes, repeated
// in argument order.
func appendFrame(dst []byte, b []byte) []byte {
	n := len(b)
	dst = append(dst, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	return append(dst, b...)
}

func nextFrame(src []byte) (frame, rest []byte, ok bool) {
	if len(src) < 4 {
		return nil, nil, false
	}
	n := int(uint32(src[0]) | uint32(src[1])<<8 | uint32(src[2])<<16 | uint32(src[3])<<24)
	if n < 0 || len(src) < 4+n {
		return nil, nil, false
	}
	return src[4 : 4+n], src[4+n:], true
}

// genericMaybeChecked implements the policy decision of MAYBE_CHECKED:
// unconditional grants pass, conditional grants consult the file map, and
// the temporal policy may stochastically exempt what spatial monitoring
// would catch (§3.4).
func genericMaybeChecked(ip *IPMon, t *vkernel.Thread, c *vkernel.Call) bool {
	// §3.1: operations on special files (/proc/<pid>/maps and friends) are
	// forcibly forwarded to GHUMVEE so their content can be filtered —
	// even when the call itself is unconditionally exempt.
	if d := sysdesc.Lookup(c.Num); d != nil && d.NArgs > 0 && d.Args[0].Type == sysdesc.ArgFD {
		if typ, _, open := ip.FileMap.Lookup(int(c.Arg(0))); open && typ == fdmap.TypeSpecial {
			return true
		}
	}
	switch ip.Policy.Verdict(c.Num) {
	case policy.Unmonitored:
		return false
	case policy.Conditional:
		var class policy.FDClass = policy.FDUnknown
		if d := sysdesc.Lookup(c.Num); d != nil && d.NArgs > 0 && d.Args[0].Type == sysdesc.ArgFD {
			class = ip.FileMap.Class(int(c.Arg(0)))
		} else if c.Num == vkernel.SysFutex {
			class = policy.FDUnknown
		}
		if ip.Policy.CheckConditional(c.Num, class) {
			return false
		}
	}
	if ip.Temporal != nil {
		ltid := 0
		if ip.LtidOf != nil {
			ltid = ip.LtidOf(t)
		}
		if ip.Temporal.Exempt(ltid, c.Num) {
			ip.bumpTemporal()
			return false
		}
	}
	return true
}

// genericGatherIn walks the descriptor and deep-copies input buffers.
func genericGatherIn(ip *IPMon, t *vkernel.Thread, c *vkernel.Call) []byte {
	d := sysdesc.Lookup(c.Num)
	if d == nil {
		return nil
	}
	var out []byte
	for i := 0; i < d.NArgs; i++ {
		switch d.Args[i].Type {
		case sysdesc.ArgPath:
			s, err := readCString(t.Proc.Mem, mem.Addr(c.Arg(i)))
			if err != nil {
				out = appendFrame(out, nil)
				continue
			}
			out = appendFrame(out, append([]byte(s), 0))
		case sysdesc.ArgInBuf, sysdesc.ArgInOutBuf:
			size := d.InBufSize(i, c)
			if size == 0 || c.Arg(i) == 0 {
				out = appendFrame(out, nil)
				continue
			}
			buf, err := t.Proc.Mem.ReadBytes(mem.Addr(c.Arg(i)), size)
			if err != nil {
				out = appendFrame(out, nil)
				continue
			}
			out = appendFrame(out, buf)
		case sysdesc.ArgIovec:
			data, err := gatherIovec(t, c, i, d.Args[i].LenArg)
			if err != nil {
				out = appendFrame(out, nil)
				continue
			}
			out = appendFrame(out, data)
		}
	}
	return out
}

// genericOutCap computes the worst-case output reservation (CALCSIZE).
func genericOutCap(ip *IPMon, c *vkernel.Call) int {
	d := sysdesc.Lookup(c.Num)
	if d == nil {
		return 0
	}
	cap := 0
	for i := 0; i < d.NArgs; i++ {
		a := d.Args[i]
		if a.Type != sysdesc.ArgOutBuf && a.Type != sysdesc.ArgInOutBuf {
			continue
		}
		switch a.Rule {
		case sysdesc.SizeRet, sysdesc.SizeLenArg:
			n := 0
			if a.LenArg >= 0 {
				n = int(c.Arg(a.LenArg))
			} else {
				// Ret-sized with the count in the canonical length slot
				// (arg2 for read-family).
				n = int(c.Arg(2))
			}
			if a.Fixed > 0 {
				n *= a.Fixed
			}
			if n < 0 {
				n = 0
			}
			if n > 1<<22 {
				n = 1 << 22
			}
			cap += n + 4
		case sysdesc.SizeFixed:
			cap += a.Fixed + 4
		case sysdesc.SizeRetTimes:
			// Worst case: maxevents (arg2) entries.
			cap += int(c.Arg(2))*a.Fixed + 4
		case sysdesc.SizeCString:
			cap += 260
		}
	}
	return cap
}

// genericGatherOut reads the master's output buffers after execution.
func genericGatherOut(ip *IPMon, t *vkernel.Thread, c *vkernel.Call, r vkernel.Result) []byte {
	d := sysdesc.Lookup(c.Num)
	if d == nil {
		return nil
	}
	var out []byte
	for i := 0; i < d.NArgs; i++ {
		a := d.Args[i]
		if a.Type != sysdesc.ArgOutBuf && a.Type != sysdesc.ArgInOutBuf {
			continue
		}
		if c.Arg(i) == 0 {
			out = appendFrame(out, nil)
			continue
		}
		if a.Rule == sysdesc.SizeCString {
			s, err := readCString(t.Proc.Mem, mem.Addr(c.Arg(i)))
			if err != nil {
				out = appendFrame(out, nil)
				continue
			}
			out = appendFrame(out, append([]byte(s), 0))
			continue
		}
		size := d.OutBufSize(i, c, r.Val, r.Ok())
		if size == 0 {
			out = appendFrame(out, nil)
			continue
		}
		buf, err := t.Proc.Mem.ReadBytes(mem.Addr(c.Arg(i)), size)
		if err != nil {
			out = appendFrame(out, nil)
			continue
		}
		out = appendFrame(out, buf)
	}
	return out
}

// genericApplyOut writes replicated output frames into the slave's own
// buffer arguments.
func genericApplyOut(ip *IPMon, t *vkernel.Thread, c *vkernel.Call, out []byte, r vkernel.Result) {
	d := sysdesc.Lookup(c.Num)
	if d == nil {
		return
	}
	rest := out
	for i := 0; i < d.NArgs; i++ {
		a := d.Args[i]
		if a.Type != sysdesc.ArgOutBuf && a.Type != sysdesc.ArgInOutBuf {
			continue
		}
		frame, r2, ok := nextFrame(rest)
		if !ok {
			return
		}
		rest = r2
		if len(frame) == 0 || c.Arg(i) == 0 {
			continue
		}
		_ = t.Proc.Mem.Write(mem.Addr(c.Arg(i)), frame)
	}
}

// genericRegMask compares every scalar argument.
func genericRegMask(d *sysdesc.Desc) uint8 {
	var mask uint8
	for i := 0; i < d.NArgs; i++ {
		switch d.Args[i].Type {
		case sysdesc.ArgInt, sysdesc.ArgFD:
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// buildHandlers constructs the fast-path handler table from the policy's
// unmonitored set.
func buildHandlers(pol *policy.Spatial) map[int]*Handler {
	handlers := map[int]*Handler{}
	mask := pol.UnmonitoredSet()
	for _, d := range sysdesc.All() {
		if !(&mask).Has(d.Nr) {
			continue
		}
		h := &Handler{
			Nr:           d.Nr,
			Desc:         d,
			MaybeChecked: genericMaybeChecked,
			GatherIn:     genericGatherIn,
			OutCap:       genericOutCap,
			GatherOut:    genericGatherOut,
			ApplyOut:     genericApplyOut,
			RegMask:      genericRegMask(d),
			MasterOnly:   d.Exec == sysdesc.MasterCall,
		}
		switch d.Special {
		case sysdesc.SpecEpollCtl:
			h.PreSide = epollCtlPreSide
			h.GatherIn = epollCtlGatherIn
		case sysdesc.SpecEpollWait:
			h.GatherOut = epollWaitGatherOut
			h.ApplyOut = epollWaitApplyOut
		}
		handlers[d.Nr] = h
	}
	return handlers
}

// epollCtlGatherIn logs only the comparable half of the epoll_event
// struct: the events mask. The data cookie is a replica-specific pointer
// (§3.9) and is handled by the shadow map, not by comparison.
func epollCtlGatherIn(ip *IPMon, t *vkernel.Thread, c *vkernel.Call) []byte {
	if c.Arg(3) == 0 {
		return appendFrame(nil, nil)
	}
	raw, err := t.Proc.Mem.ReadBytes(mem.Addr(c.Arg(3)), 8)
	if err != nil {
		return appendFrame(nil, nil)
	}
	return appendFrame(nil, raw)
}

// epollCtlPreSide implements §3.9's registration half: every replica
// records its own epoll_event cookie for the fd.
func epollCtlPreSide(ip *IPMon, t *vkernel.Thread, c *vkernel.Call) {
	op := int(c.Arg(1))
	fd := int(c.Arg(2))
	switch op {
	case vkernel.EpollCtlAdd, vkernel.EpollCtlMod:
		raw, err := t.Proc.Mem.ReadBytes(mem.Addr(c.Arg(3)), vkernel.EpollEventSize)
		if err != nil {
			return
		}
		cookie := leU64(raw[8:])
		ip.Shadow.Register(ip.Replica, fd, cookie)
	case vkernel.EpollCtlDel:
		ip.Shadow.Unregister(ip.Replica, fd)
	}
}

// epollWaitGatherOut implements the master half of §3.9: "IP-MON uses
// this mapping to store FDs, rather than pointer values" — the RB payload
// carries fd numbers, not the master's pointers. The master translates its
// own cookies synchronously, so a master running ahead (closing and
// unregistering descriptors) can never invalidate an entry a slave has yet
// to consume.
func epollWaitGatherOut(ip *IPMon, t *vkernel.Thread, c *vkernel.Call, r vkernel.Result) []byte {
	out := genericGatherOut(nil, t, c, r)
	frame, _, ok := nextFrame(out)
	if !ok || len(frame) == 0 {
		return out
	}
	n := int(r.Val)
	for e := 0; e < n && (e+1)*vkernel.EpollEventSize <= len(frame); e++ {
		off := e*vkernel.EpollEventSize + 8
		cookie := leU64(frame[off:])
		if fd, ok := ip.Shadow.FDForCookie(ip.Replica, cookie); ok {
			putLeU64(frame[off:], uint64(fd))
		}
	}
	return out
}

// epollWaitApplyOut implements the slave half of §3.9: map the fds in the
// RB payload back onto this replica's own registered pointer values.
func epollWaitApplyOut(ip *IPMon, t *vkernel.Thread, c *vkernel.Call, out []byte, r vkernel.Result) {
	frame, _, ok := nextFrame(out)
	if !ok || len(frame) == 0 || c.Arg(1) == 0 {
		return
	}
	buf := make([]byte, len(frame))
	copy(buf, frame)
	n := int(r.Val)
	for e := 0; e < n && (e+1)*vkernel.EpollEventSize <= len(buf); e++ {
		off := e*vkernel.EpollEventSize + 8
		fd := int(leU64(buf[off:]))
		if own, ok := ip.Shadow.CookieForFD(ip.Replica, fd); ok {
			putLeU64(buf[off:], own)
		}
	}
	_ = t.Proc.Mem.Write(mem.Addr(c.Arg(1)), buf)
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}

func readCString(as *mem.AddressSpace, a mem.Addr) (string, error) {
	var out []byte
	var one [1]byte
	for len(out) < 4096 {
		if err := as.Read(a+mem.Addr(len(out)), one[:]); err != nil {
			return "", err
		}
		if one[0] == 0 {
			return string(out), nil
		}
		out = append(out, one[0])
	}
	return string(out), nil
}

func gatherIovec(t *vkernel.Thread, c *vkernel.Call, argIdx, cntIdx int) ([]byte, error) {
	cnt := 1
	if cntIdx >= 0 {
		cnt = int(c.Arg(cntIdx))
	}
	if cnt < 0 || cnt > 1024 {
		cnt = 1
	}
	raw, err := t.Proc.Mem.ReadBytes(mem.Addr(c.Arg(argIdx)), cnt*16)
	if err != nil {
		return nil, err
	}
	var out []byte
	for i := 0; i < cnt; i++ {
		base := leU64(raw[i*16:])
		length := leU64(raw[i*16+8:])
		if length > 1<<22 {
			length = 1 << 22
		}
		buf, err := t.Proc.Mem.ReadBytes(mem.Addr(base), int(length))
		if err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}

// blockingExpected predicts blocking from the file map (§3.6/§3.7).
func blockingExpected(ip *IPMon, d *sysdesc.Desc, c *vkernel.Call) bool {
	if d == nil || d.BlockFD < 0 {
		return false
	}
	return ip.FileMap.MayBlock(int(c.Arg(d.BlockFD)))
}
