// Package ipmon implements IP-MON, ReMon's in-process monitor (§3): the
// component loaded into every replica that replicates unmonitored system
// calls through the shared replication buffer without cross-process
// monitoring.
//
// Each supported syscall has a four-phase handler in the style of the
// paper's C macros (Listing 1):
//
//	MAYBE_CHECKED — decide, against the active relaxation policy and the
//	                file map, whether the call must be forwarded to
//	                GHUMVEE after all;
//	CALCSIZE      — compute the worst-case replication buffer space;
//	PRECALL       — master: log call number, arguments and deep-copied
//	                input buffers into the RB; slave: compare its own
//	                arguments against the master's record (divergence =>
//	                intentional crash);
//	POSTCALL      — master: publish results; slave: wait (spin or futex)
//	                and copy the results into its own buffers.
//
// Most handlers are generated from the sysdesc table; the interesting ones
// (read, write, epoll_ctl, epoll_wait) are hand-written below in the shape
// of Listing 1.
package ipmon

import (
	"remon/internal/fdmap"
	"remon/internal/mem"
	"remon/internal/policy"
	"remon/internal/sysdesc"
	"remon/internal/vkernel"
)

// Handler is the four-phase description of one fast-path syscall.
type Handler struct {
	Nr   int
	Desc *sysdesc.Desc

	// MaybeChecked reports whether the call must be monitored by GHUMVEE
	// under the stream's pinned policy snapshot (true = forward). nil =
	// never checked.
	MaybeChecked func(ip *IPMon, t *vkernel.Thread, c *vkernel.Call, snap *policy.Snapshot) bool

	// PreSide runs in every replica before execution/abort — used by
	// epoll_ctl to register this replica's cookie in the shadow map.
	PreSide func(ip *IPMon, t *vkernel.Thread, c *vkernel.Call)

	// GatherIn deep-copies the input buffers for the RB (master) or for
	// comparison (slave), appending frames to dst (which may be a reused
	// scratch buffer). It returns nil — not dst — when the call has no
	// gatherable input arguments, so callers can skip the payload
	// comparison entirely.
	GatherIn func(ip *IPMon, t *vkernel.Thread, c *vkernel.Call, dst []byte) []byte

	// OutCap reserves RB space for results (CALCSIZE).
	OutCap func(ip *IPMon, c *vkernel.Call) int

	// GatherOut reads the master's output buffers after the call,
	// appending frames to dst.
	GatherOut func(ip *IPMon, t *vkernel.Thread, c *vkernel.Call, r vkernel.Result, dst []byte) []byte

	// ApplyOut writes the replicated output into the slave's own buffers.
	ApplyOut func(ip *IPMon, t *vkernel.Thread, c *vkernel.Call, out []byte, r vkernel.Result)

	// RegMask selects the scalar arguments compared between master and
	// slave (bit i = compare Args[i]).
	RegMask uint8

	// MasterOnly: only the master executes (MASTERCALL); slaves abort and
	// consume replicated results.
	MasterOnly bool
}

// frame encoding for multi-buffer payloads: u32 length + bytes, repeated
// in argument order.
func appendFrame(dst []byte, b []byte) []byte {
	n := len(b)
	dst = append(dst, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	return append(dst, b...)
}

// growFrame appends an empty frame claiming n payload bytes and returns
// dst plus the offset of the payload area. The caller fills
// dst[payOff:payOff+n] in place (typically via AddressSpace.Read straight
// into the scratch buffer — no intermediate allocation) or calls
// patchFrame to shrink/void the frame.
func growFrame(dst []byte, n int) (out []byte, payOff int) {
	dst = append(dst, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	payOff = len(dst)
	if n > 0 {
		dst = extend(dst, n)
	}
	return dst, payOff
}

// extend grows dst by n bytes (contents unspecified), amortising
// reallocations so reused scratch buffers stop allocating once warm.
func extend(dst []byte, n int) []byte {
	cur := len(dst)
	if need := cur + n; need > cap(dst) {
		grown := make([]byte, cur, need+need/2)
		copy(grown, dst)
		dst = grown
	}
	return dst[:cur+n]
}

// patchFrame rewrites the length prefix of the frame whose payload starts
// at payOff to n and truncates dst accordingly (n must not exceed the
// grown size). Used when a read faults (frame becomes empty) or produces
// fewer bytes than reserved.
func patchFrame(dst []byte, payOff, n int) []byte {
	dst[payOff-4] = byte(n)
	dst[payOff-3] = byte(n >> 8)
	dst[payOff-2] = byte(n >> 16)
	dst[payOff-1] = byte(n >> 24)
	return dst[:payOff+n]
}

func nextFrame(src []byte) (frame, rest []byte, ok bool) {
	if len(src) < 4 {
		return nil, nil, false
	}
	n := int(uint32(src[0]) | uint32(src[1])<<8 | uint32(src[2])<<16 | uint32(src[3])<<24)
	if n < 0 || len(src) < 4+n {
		return nil, nil, false
	}
	return src[4 : 4+n], src[4+n:], true
}

// genericMaybeChecked implements the policy decision of MAYBE_CHECKED
// against the stream's pinned snapshot: the effective level is resolved
// per descriptor (global default < class rule < per-fd override),
// unconditional grants pass, conditional grants consult the file map, and
// the temporal policy may stochastically exempt what spatial monitoring
// would catch (§3.4).
func genericMaybeChecked(ip *IPMon, t *vkernel.Thread, c *vkernel.Call, snap *policy.Snapshot) bool {
	fd := -1
	var class policy.FDClass = policy.FDUnknown
	if d := sysdesc.Lookup(c.Num); d != nil && d.NArgs > 0 && d.Args[0].Type == sysdesc.ArgFD {
		fd = int(c.Arg(0))
		// §3.1: operations on special files (/proc/<pid>/maps and
		// friends) are forcibly forwarded to GHUMVEE so their content can
		// be filtered — even when the call itself is unconditionally
		// exempt.
		if typ, _, open := ip.FileMap.Lookup(fd); open && typ == fdmap.TypeSpecial {
			return true
		}
		class = ip.FileMap.Class(fd)
	}
	switch snap.Verdict(c.Num, fd, class) {
	case policy.Unmonitored:
		return false
	case policy.Conditional:
		if snap.CheckConditional(c.Num, fd, class) {
			return false
		}
	}
	if ip.Temporal != nil {
		ltid := 0
		if ip.LtidOf != nil {
			ltid = ip.LtidOf(t)
		}
		if ip.Temporal.Exempt(ltid, c.Num) {
			ip.bumpTemporal()
			return false
		}
	}
	return true
}

// genericGatherIn walks the descriptor and deep-copies input buffers into
// dst (append semantics: buffers are read straight into the scratch
// buffer's tail, no per-call allocation once it has warmed up). It
// returns nil when the call has no gatherable input arguments, preserving
// the "no payload to compare" signal.
func genericGatherIn(ip *IPMon, t *vkernel.Thread, c *vkernel.Call, dst []byte) []byte {
	d := sysdesc.Lookup(c.Num)
	if d == nil {
		return nil
	}
	out := dst
	gathered := false
	for i := 0; i < d.NArgs; i++ {
		switch d.Args[i].Type {
		case sysdesc.ArgPath:
			gathered = true
			out = appendCString(out, t.Proc.Mem, mem.Addr(c.Arg(i)))
		case sysdesc.ArgInBuf, sysdesc.ArgInOutBuf:
			gathered = true
			size := d.InBufSize(i, c)
			if size == 0 || c.Arg(i) == 0 {
				out = appendFrame(out, nil)
				continue
			}
			var payOff int
			out, payOff = growFrame(out, size)
			if err := t.Proc.Mem.Read(mem.Addr(c.Arg(i)), out[payOff:]); err != nil {
				out = patchFrame(out, payOff, 0)
			}
		case sysdesc.ArgIovec:
			gathered = true
			out = appendIovec(out, t, c, i, d.Args[i].LenArg)
		}
	}
	if !gathered {
		return nil
	}
	return out
}

// appendCString appends a frame holding the NUL-terminated string at a
// (including the terminator), or an empty frame on fault.
func appendCString(dst []byte, as *mem.AddressSpace, a mem.Addr) []byte {
	s, err := readCString(as, a)
	if err != nil {
		return appendFrame(dst, nil)
	}
	n := len(s) + 1
	dst, payOff := growFrame(dst, n)
	copy(dst[payOff:], s)
	dst[payOff+n-1] = 0
	return dst
}

// appendIovec appends one frame holding the concatenated iovec buffers,
// reading each straight into the scratch tail; on any fault the frame
// becomes empty (matching the seed's all-or-nothing behaviour).
func appendIovec(dst []byte, t *vkernel.Thread, c *vkernel.Call, argIdx, cntIdx int) []byte {
	cnt := 1
	if cntIdx >= 0 {
		cnt = int(c.Arg(cntIdx))
	}
	if cnt < 0 || cnt > 1024 {
		cnt = 1
	}
	var raw [16]byte
	dst, payOff := growFrame(dst, 0)
	for i := 0; i < cnt; i++ {
		if err := t.Proc.Mem.Read(mem.Addr(c.Arg(argIdx))+mem.Addr(i*16), raw[:]); err != nil {
			return patchFrame(dst, payOff, 0)
		}
		base := leU64(raw[:])
		length64 := leU64(raw[8:])
		if length64 > 1<<22 {
			length64 = 1 << 22
		}
		length := int(length64)
		cur := len(dst)
		dst = extend(dst, length)
		if err := t.Proc.Mem.Read(mem.Addr(base), dst[cur:]); err != nil {
			return patchFrame(dst, payOff, 0)
		}
	}
	return patchFrame(dst, payOff, len(dst)-payOff)
}

// genericOutCap computes the worst-case output reservation (CALCSIZE).
func genericOutCap(ip *IPMon, c *vkernel.Call) int {
	d := sysdesc.Lookup(c.Num)
	if d == nil {
		return 0
	}
	cap := 0
	for i := 0; i < d.NArgs; i++ {
		a := d.Args[i]
		if a.Type != sysdesc.ArgOutBuf && a.Type != sysdesc.ArgInOutBuf {
			continue
		}
		switch a.Rule {
		case sysdesc.SizeRet, sysdesc.SizeLenArg:
			n := 0
			if a.LenArg >= 0 {
				n = int(c.Arg(a.LenArg))
			} else {
				// Ret-sized with the count in the canonical length slot
				// (arg2 for read-family).
				n = int(c.Arg(2))
			}
			if a.Fixed > 0 {
				n *= a.Fixed
			}
			if n < 0 {
				n = 0
			}
			if n > 1<<22 {
				n = 1 << 22
			}
			cap += n + 4
		case sysdesc.SizeFixed:
			cap += a.Fixed + 4
		case sysdesc.SizeRetTimes:
			// Worst case: maxevents (arg2) entries.
			cap += int(c.Arg(2))*a.Fixed + 4
		case sysdesc.SizeCString:
			cap += 260
		}
	}
	return cap
}

// genericGatherOut reads the master's output buffers after execution,
// appending frames to dst (reused scratch — no per-call allocation).
func genericGatherOut(ip *IPMon, t *vkernel.Thread, c *vkernel.Call, r vkernel.Result, dst []byte) []byte {
	d := sysdesc.Lookup(c.Num)
	if d == nil {
		return dst
	}
	out := dst
	for i := 0; i < d.NArgs; i++ {
		a := d.Args[i]
		if a.Type != sysdesc.ArgOutBuf && a.Type != sysdesc.ArgInOutBuf {
			continue
		}
		if c.Arg(i) == 0 {
			out = appendFrame(out, nil)
			continue
		}
		if a.Rule == sysdesc.SizeCString {
			out = appendCString(out, t.Proc.Mem, mem.Addr(c.Arg(i)))
			continue
		}
		size := d.OutBufSize(i, c, r.Val, r.Ok())
		if size == 0 {
			out = appendFrame(out, nil)
			continue
		}
		var payOff int
		out, payOff = growFrame(out, size)
		if err := t.Proc.Mem.Read(mem.Addr(c.Arg(i)), out[payOff:]); err != nil {
			out = patchFrame(out, payOff, 0)
		}
	}
	return out
}

// genericApplyOut writes replicated output frames into the slave's own
// buffer arguments.
func genericApplyOut(ip *IPMon, t *vkernel.Thread, c *vkernel.Call, out []byte, r vkernel.Result) {
	d := sysdesc.Lookup(c.Num)
	if d == nil {
		return
	}
	rest := out
	for i := 0; i < d.NArgs; i++ {
		a := d.Args[i]
		if a.Type != sysdesc.ArgOutBuf && a.Type != sysdesc.ArgInOutBuf {
			continue
		}
		frame, r2, ok := nextFrame(rest)
		if !ok {
			return
		}
		rest = r2
		if len(frame) == 0 || c.Arg(i) == 0 {
			continue
		}
		_ = t.Proc.Mem.Write(mem.Addr(c.Arg(i)), frame)
	}
}

// genericRegMask compares every scalar argument.
func genericRegMask(d *sysdesc.Desc) uint8 {
	var mask uint8
	for i := 0; i < d.NArgs; i++ {
		switch d.Args[i].Type {
		case sysdesc.ArgInt, sysdesc.ArgFD:
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// buildHandlers constructs the fast-path handler table from the policy's
// unmonitored set, as a dense array indexed by syscall number.
func buildHandlers(pol *policy.Spatial) [vkernel.MaxSyscall]*Handler {
	var handlers [vkernel.MaxSyscall]*Handler
	mask := pol.UnmonitoredSet()
	for _, d := range sysdesc.All() {
		if !(&mask).Has(d.Nr) {
			continue
		}
		h := &Handler{
			Nr:           d.Nr,
			Desc:         d,
			MaybeChecked: genericMaybeChecked,
			GatherIn:     genericGatherIn,
			OutCap:       genericOutCap,
			GatherOut:    genericGatherOut,
			ApplyOut:     genericApplyOut,
			RegMask:      genericRegMask(d),
			MasterOnly:   d.Exec == sysdesc.MasterCall,
		}
		switch d.Special {
		case sysdesc.SpecEpollCtl:
			h.PreSide = epollCtlPreSide
			h.GatherIn = epollCtlGatherIn
		case sysdesc.SpecEpollWait:
			h.GatherOut = epollWaitGatherOut
			h.ApplyOut = epollWaitApplyOut
		}
		handlers[d.Nr] = h
	}
	return handlers
}

// epollCtlGatherIn logs only the comparable half of the epoll_event
// struct: the events mask. The data cookie is a replica-specific pointer
// (§3.9) and is handled by the shadow map, not by comparison.
func epollCtlGatherIn(ip *IPMon, t *vkernel.Thread, c *vkernel.Call, dst []byte) []byte {
	if c.Arg(3) == 0 {
		return appendFrame(dst, nil)
	}
	out, payOff := growFrame(dst, 8)
	if err := t.Proc.Mem.Read(mem.Addr(c.Arg(3)), out[payOff:]); err != nil {
		return patchFrame(out, payOff, 0)
	}
	return out
}

// epollCtlPreSide implements §3.9's registration half: every replica
// records its own epoll_event cookie for the fd.
func epollCtlPreSide(ip *IPMon, t *vkernel.Thread, c *vkernel.Call) {
	op := int(c.Arg(1))
	fd := int(c.Arg(2))
	switch op {
	case vkernel.EpollCtlAdd, vkernel.EpollCtlMod:
		raw, err := t.Proc.Mem.ReadBytes(mem.Addr(c.Arg(3)), vkernel.EpollEventSize)
		if err != nil {
			return
		}
		cookie := leU64(raw[8:])
		ip.Shadow.Register(ip.Replica, fd, cookie)
	case vkernel.EpollCtlDel:
		ip.Shadow.Unregister(ip.Replica, fd)
	}
}

// epollWaitGatherOut implements the master half of §3.9: "IP-MON uses
// this mapping to store FDs, rather than pointer values" — the RB payload
// carries fd numbers, not the master's pointers. The master translates its
// own cookies synchronously, so a master running ahead (closing and
// unregistering descriptors) can never invalidate an entry a slave has yet
// to consume.
func epollWaitGatherOut(ip *IPMon, t *vkernel.Thread, c *vkernel.Call, r vkernel.Result, dst []byte) []byte {
	out := genericGatherOut(nil, t, c, r, dst)
	frame, _, ok := nextFrame(out[len(dst):])
	if !ok || len(frame) == 0 {
		return out
	}
	n := int(r.Val)
	for e := 0; e < n && (e+1)*vkernel.EpollEventSize <= len(frame); e++ {
		off := e*vkernel.EpollEventSize + 8
		cookie := leU64(frame[off:])
		if fd, ok := ip.Shadow.FDForCookie(ip.Replica, cookie); ok {
			putLeU64(frame[off:], uint64(fd))
		}
	}
	return out
}

// epollWaitApplyOut implements the slave half of §3.9: map the fds in the
// RB payload back onto this replica's own registered pointer values.
func epollWaitApplyOut(ip *IPMon, t *vkernel.Thread, c *vkernel.Call, out []byte, r vkernel.Result) {
	frame, _, ok := nextFrame(out)
	if !ok || len(frame) == 0 || c.Arg(1) == 0 {
		return
	}
	buf := make([]byte, len(frame))
	copy(buf, frame)
	n := int(r.Val)
	for e := 0; e < n && (e+1)*vkernel.EpollEventSize <= len(buf); e++ {
		off := e*vkernel.EpollEventSize + 8
		fd := int(leU64(buf[off:]))
		if own, ok := ip.Shadow.CookieForFD(ip.Replica, fd); ok {
			putLeU64(buf[off:], own)
		}
	}
	_ = t.Proc.Mem.Write(mem.Addr(c.Arg(1)), buf)
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}

func readCString(as *mem.AddressSpace, a mem.Addr) (string, error) {
	var out []byte
	var one [1]byte
	for len(out) < 4096 {
		if err := as.Read(a+mem.Addr(len(out)), one[:]); err != nil {
			return "", err
		}
		if one[0] == 0 {
			return string(out), nil
		}
		out = append(out, one[0])
	}
	return string(out), nil
}

// blockingExpected predicts blocking from the file map (§3.6/§3.7).
func blockingExpected(ip *IPMon, d *sysdesc.Desc, c *vkernel.Call) bool {
	if d == nil || d.BlockFD < 0 {
		return false
	}
	return ip.FileMap.MayBlock(int(c.Arg(d.BlockFD)))
}
