package ipmon

import (
	"remon/internal/fdmap"
	"remon/internal/vkernel"
)

// Exported payload helpers. Other MVEE designs built on the same kernel —
// the VARAN-style in-process baseline used for Table 2 — reuse IP-MON's
// argument gathering and result replication without its policy or token
// machinery.

// PayloadIn deep-copies a call's input buffers (PRECALL log format),
// appending to dst (which may be nil, or a reused scratch buffer).
func PayloadIn(t *vkernel.Thread, c *vkernel.Call, dst []byte) []byte {
	if c.Num == vkernel.SysEpollCtl {
		return epollCtlGatherIn(nil, t, c, dst)
	}
	return genericGatherIn(nil, t, c, dst)
}

// PayloadOutCap computes the worst-case result reservation (CALCSIZE).
func PayloadOutCap(c *vkernel.Call) int {
	return genericOutCap(nil, c)
}

// PayloadOut reads a completed call's output buffers (POSTCALL format),
// appending to dst (which may be nil, or a reused scratch buffer).
// For epoll_wait, the master's cookies are converted to fd numbers in the
// payload (§3.9) using the master's shadow entries for the given replica.
func PayloadOut(t *vkernel.Thread, c *vkernel.Call, r vkernel.Result, shadow *fdmap.EpollShadow, replica int, dst []byte) []byte {
	if (c.Num == vkernel.SysEpollWait || c.Num == vkernel.SysEpollPwait) && shadow != nil {
		tmp := &IPMon{Shadow: shadow, Replica: replica}
		return epollWaitGatherOut(tmp, t, c, r, dst)
	}
	return genericGatherOut(nil, t, c, r, dst)
}

// ApplyPayloadOut writes replicated output into the slave's own buffers.
// When shadow is non-nil, epoll_wait events are cookie-translated for the
// given replica (§3.9).
func ApplyPayloadOut(t *vkernel.Thread, c *vkernel.Call, out []byte, r vkernel.Result, shadow *fdmap.EpollShadow, replica int) {
	if c.Num == vkernel.SysEpollWait || c.Num == vkernel.SysEpollPwait {
		if shadow != nil {
			tmp := &IPMon{Shadow: shadow, Replica: replica}
			epollWaitApplyOut(tmp, t, c, out, r)
			return
		}
	}
	genericApplyOut(nil, t, c, out, r)
}

// RegisterEpollCookie records a replica's epoll_ctl cookie in the shadow
// map (the registration half of §3.9).
func RegisterEpollCookie(shadow *fdmap.EpollShadow, replica int, t *vkernel.Thread, c *vkernel.Call) {
	tmp := &IPMon{Shadow: shadow, Replica: replica}
	epollCtlPreSide(tmp, t, c)
}
