package ipmon

import (
	"sync"

	"remon/internal/fdmap"
	"remon/internal/ikb"
	"remon/internal/mem"
	"remon/internal/model"
	"remon/internal/policy"
	"remon/internal/rb"
	"remon/internal/vkernel"
)

// Stats counts IP-MON activity in one replica.
type Stats struct {
	Dispatched      uint64 // calls entering the IP-MON entry point
	Unmonitored     uint64 // completed without GHUMVEE
	ForwardedPolicy uint64 // MAYBE_CHECKED said monitor (step 4')
	ForwardedSignal uint64 // signals-pending flag forced monitoring (§3.8)
	ForwardedTooBig uint64 // CALCSIZE exceeded the RB (§3.3)
	TemporalExempt  uint64 // calls passed by the temporal policy
	Divergences     uint64 // argument mismatches detected (slave side)
	// LastDivergence records the most recent mismatch description.
	LastDivergence string
}

// IPMon is one replica's in-process monitor instance.
//
// Security-relevant representation choice: RBBase — the replica's mapped
// address of the replication buffer — lives only in this struct and in
// IK-B's per-call Context, mirroring the paper's register-only discipline
// (§3.1). It is never written into the replica's simulated address space;
// the leak test in the attack suite scans replica memory to prove it.
type IPMon struct {
	Replica  int
	Proc     *vkernel.Process
	Buf      *rb.Buffer
	RBBase   mem.Addr
	FileMap  *fdmap.FileMap
	Shadow   *fdmap.EpollShadow
	Policy   *policy.Spatial
	Temporal *policy.Temporal

	// LtidOf resolves a thread's logical thread id — its RB partition.
	LtidOf func(t *vkernel.Thread) int

	// BlockingOverride forces the slave wait strategy for the ablation
	// benches: nil = predict from the file map (§3.7), true = always use
	// the futex condvar, false = always spin.
	BlockingOverride *bool

	mu       sync.Mutex
	writers  map[int]*rb.Writer
	readers  map[int]*rb.Reader
	handlers map[int]*Handler
	stats    Stats
}

// Config bundles IP-MON construction parameters.
type Config struct {
	Replica  int
	Proc     *vkernel.Process
	Buf      *rb.Buffer
	RBBase   mem.Addr
	FileMap  *fdmap.FileMap
	Shadow   *fdmap.EpollShadow
	Policy   *policy.Spatial
	Temporal *policy.Temporal
	LtidOf   func(t *vkernel.Thread) int
	// BlockingOverride: see IPMon.BlockingOverride.
	BlockingOverride *bool
}

// New creates a replica's IP-MON instance.
func New(cfg Config) *IPMon {
	ip := &IPMon{
		Replica:          cfg.Replica,
		Proc:             cfg.Proc,
		Buf:              cfg.Buf,
		RBBase:           cfg.RBBase,
		FileMap:          cfg.FileMap,
		Shadow:           cfg.Shadow,
		Policy:           cfg.Policy,
		Temporal:         cfg.Temporal,
		LtidOf:           cfg.LtidOf,
		BlockingOverride: cfg.BlockingOverride,
		writers:          map[int]*rb.Writer{},
		readers:          map[int]*rb.Reader{},
	}
	// Handlers are built for the full fast path; routing (the IK-B mask)
	// and MAYBE_CHECKED decide what actually runs unmonitored.
	ip.handlers = buildHandlers(policy.NewSpatial(policy.SocketRWLevel))
	return ip
}

// Stats snapshots the counters.
func (ip *IPMon) Stats() Stats {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	return ip.stats
}

// SupportedCalls reports how many syscalls have fast-path handlers.
func (ip *IPMon) SupportedCalls() int {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	return len(ip.handlers)
}

// UnmonitoredMask is the registration mask for IK-B (§3.5). With a
// temporal policy active, IK-B must forward every fast-path call to
// IP-MON — calls the spatial level would monitor may still be exempted
// stochastically after an approval streak (§3.4) — so the mask covers the
// whole handler table; MAYBE_CHECKED enforces the spatial level per call.
func (ip *IPMon) UnmonitoredMask() vkernel.SyscallMask {
	if ip.Temporal != nil {
		return policy.NewSpatial(policy.SocketRWLevel).UnmonitoredSet()
	}
	return ip.Policy.UnmonitoredSet()
}

// MigrateRB installs a new RB mapping address after an IK-B-driven
// re-randomisation (§4's periodic-move extension). Existing writers and
// readers keep working: their cursors are segment-relative; only the
// futex addressing base changes.
func (ip *IPMon) MigrateRB(base mem.Addr) {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	ip.RBBase = base
	for _, w := range ip.writers {
		w.Rebase(base)
	}
	for _, r := range ip.readers {
		r.Rebase(base)
	}
}

func (ip *IPMon) bumpTemporal() {
	ip.mu.Lock()
	ip.stats.TemporalExempt++
	ip.mu.Unlock()
}

func (ip *IPMon) writer(ltid int) *rb.Writer {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	w, ok := ip.writers[ltid]
	if !ok {
		w = ip.Buf.NewWriter(ltid%ip.Buf.Partitions(), ip.RBBase)
		ip.writers[ltid] = w
	}
	return w
}

func (ip *IPMon) reader(ltid int) *rb.Reader {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	r, ok := ip.readers[ltid]
	if !ok {
		r = ip.Buf.NewReader(ltid%ip.Buf.Partitions(), ip.Replica, ip.RBBase)
		ip.readers[ltid] = r
	}
	return r
}

// Entry is the system call entry point IK-B forwards unmonitored calls to
// (Figure 2, step 2). It runs on the replica thread itself — in-process,
// no context switch.
func (ip *IPMon) Entry(ctx *ikb.Context) vkernel.Result {
	t := ctx.Thread
	c := ctx.Call
	t.SetInIPMon(true)
	defer t.SetInIPMon(false)

	ip.mu.Lock()
	ip.stats.Dispatched++
	h := ip.handlers[c.Num]
	ip.mu.Unlock()

	if h == nil {
		// Registered mask and handler table disagree — be conservative.
		return ctx.ForwardToMonitor()
	}

	// §3.8: GHUMVEE raised the signals-pending flag; restart as a
	// monitored call so the monitor can deliver at a rendezvous.
	if ip.Buf.SignalsPending() {
		ip.mu.Lock()
		ip.stats.ForwardedSignal++
		ip.mu.Unlock()
		return ctx.ForwardToMonitor()
	}

	// MAYBE_CHECKED: policy verification (Listing 1).
	if h.MaybeChecked != nil && h.MaybeChecked(ip, t, c) {
		ip.mu.Lock()
		ip.stats.ForwardedPolicy++
		ip.mu.Unlock()
		if ip.Temporal != nil {
			ltid := 0
			if ip.LtidOf != nil {
				ltid = ip.LtidOf(t)
			}
			ip.Temporal.Approve(ltid, c.Num)
		}
		return ctx.ForwardToMonitor()
	}

	if h.PreSide != nil {
		h.PreSide(ip, t, c)
	}

	ltid := 0
	if ip.LtidOf != nil {
		ltid = ip.LtidOf(t)
	}
	// Threads beyond the partitioned RB's capacity fall back to the
	// lockstep path rather than sharing a partition (each replica thread
	// must own its RB position, §3.2).
	if ltid >= ip.Buf.Partitions() {
		ip.mu.Lock()
		ip.stats.ForwardedTooBig++
		ip.mu.Unlock()
		return ctx.ForwardToMonitor()
	}

	if ip.Replica == 0 {
		return ip.masterPath(ctx, h, ltid)
	}
	return ip.slavePath(ctx, h, ltid)
}

// masterPath: PRECALL logs args into the RB, the call is restarted with
// the token intact, POSTCALL replicates the results (§3.3).
func (ip *IPMon) masterPath(ctx *ikb.Context, h *Handler, ltid int) vkernel.Result {
	t := ctx.Thread
	c := ctx.Call

	inPayload := h.GatherIn(ip, t, c)
	outCap := h.OutCap(ip, c)

	var flags uint32
	if h.MasterOnly {
		flags |= rb.FlagMasterCall
	}
	blocking := blockingExpected(ip, h.Desc, c)
	if ip.BlockingOverride != nil {
		blocking = *ip.BlockingOverride
	}
	if blocking {
		flags |= rb.FlagBlocking
	}

	res, err := ip.writer(ltid).Reserve(t, c, flags, inPayload, outCap)
	if err != nil {
		// CALCSIZE overflow: forward to GHUMVEE (§3.3).
		ip.mu.Lock()
		ip.stats.ForwardedTooBig++
		ip.mu.Unlock()
		return ctx.ForwardToMonitor()
	}

	// Step 3: restart the call with the authorization token intact.
	r := ctx.CompleteWithToken(ctx.Token, c)

	outPayload := h.GatherOut(ip, t, c, r)
	var errno vkernel.Errno
	if !r.Ok() {
		errno = r.Errno
	}
	res.Complete(t, r.Val, errno, outPayload)

	ip.mu.Lock()
	ip.stats.Unmonitored++
	ip.mu.Unlock()
	return r
}

// slavePath: compare own arguments against the master's record, then
// either consume replicated results (MASTERCALL) or execute the local
// call (process-local calls like futex/nanosleep).
func (ip *IPMon) slavePath(ctx *ikb.Context, h *Handler, ltid int) vkernel.Result {
	t := ctx.Thread
	c := ctx.Call

	ev, err := ip.reader(ltid).Next(t)
	if err != nil {
		ip.divergenceCrash(t, err.Error())
		return vkernel.Result{Errno: vkernel.EPERM}
	}

	slavePayload := h.GatherIn(ip, t, c)
	if err := ev.CompareCall(t, c, h.RegMask, slavePayload); err != nil {
		// "IP-MON triggers an intentional crash, thereby signalling
		// GHUMVEE through the ptrace mechanism" (§3.3).
		ip.divergenceCrash(t, err.Error())
		return vkernel.Result{Errno: vkernel.EPERM}
	}

	if h.MasterOnly {
		// Abort the original call; results come from the RB.
		ctx.AbortCall()
		ret, errno, out := ev.WaitResults(t)
		r := vkernel.Result{Val: ret, Errno: errno}
		if r.Ok() && h.ApplyOut != nil {
			h.ApplyOut(ip, t, c, out, r)
		}
		ev.Consume()
		ip.mu.Lock()
		ip.stats.Unmonitored++
		ip.mu.Unlock()
		return r
	}

	// Process-local call: execute our own copy with our own token.
	r := ctx.CompleteWithToken(ctx.Token, c)
	ev.WaitResults(t) // drain the master's results for ordering
	ev.Consume()
	ip.mu.Lock()
	ip.stats.Unmonitored++
	ip.mu.Unlock()
	return r
}

func (ip *IPMon) divergenceCrash(t *vkernel.Thread, reason string) {
	ip.mu.Lock()
	ip.stats.Divergences++
	ip.stats.LastDivergence = reason
	ip.mu.Unlock()
	t.Clock.Advance(model.CostSignalDeliver)
	t.Crash("ipmon divergence: " + reason)
}
