package ipmon

import (
	"sync"
	"sync/atomic"

	"remon/internal/fdmap"
	"remon/internal/ikb"
	"remon/internal/mem"
	"remon/internal/model"
	"remon/internal/policy"
	"remon/internal/rb"
	"remon/internal/sysdesc"
	"remon/internal/vkernel"
)

// Stats counts IP-MON activity in one replica.
type Stats struct {
	Dispatched      uint64 // calls entering the IP-MON entry point
	Unmonitored     uint64 // completed without GHUMVEE
	ForwardedPolicy uint64 // MAYBE_CHECKED said monitor (step 4')
	ForwardedSignal uint64 // signals-pending flag forced monitoring (§3.8)
	ForwardedTooBig uint64 // CALCSIZE exceeded the RB (§3.3)
	TemporalExempt  uint64 // calls passed by the temporal policy
	Divergences     uint64 // argument mismatches detected (slave side)
	// LastDivergence records the most recent mismatch description.
	LastDivergence string
}

// Emit reports the snapshot as (metric, value) pairs under the
// telemetry naming convention ("_total" marks cumulative counters).
// Plain func signature so this package never imports the registry.
func (s Stats) Emit(emit func(name string, v uint64)) {
	emit("dispatched_total", s.Dispatched)
	emit("unmonitored_total", s.Unmonitored)
	emit("forwarded_policy_total", s.ForwardedPolicy)
	emit("forwarded_signal_total", s.ForwardedSignal)
	emit("forwarded_too_big_total", s.ForwardedTooBig)
	emit("temporal_exempt_total", s.TemporalExempt)
	emit("divergences_total", s.Divergences)
}

// counters is the lock-free backing for Stats: the fast path bumps these
// without touching the instance mutex (the seed took it 3–4 times per
// unmonitored call).
type counters struct {
	dispatched      atomic.Uint64
	unmonitored     atomic.Uint64
	forwardedPolicy atomic.Uint64
	forwardedSignal atomic.Uint64
	forwardedTooBig atomic.Uint64
	temporalExempt  atomic.Uint64
	divergences     atomic.Uint64
}

// ltState is the per-logical-thread monitor state. Exactly one replica
// thread owns an ltid (threads beyond the partition count fall back to
// the lockstep path), so everything here is accessed without locks.
type ltState struct {
	w *rb.Writer
	r *rb.Reader
	// scratch is the reusable gather buffer for input and output
	// payloads: GatherIn/GatherOut append into it instead of allocating
	// per call.
	scratch []byte
	// snap is the policy snapshot this logical thread's stream is pinned
	// to. Every stream starts at the engine's initial snapshot and
	// advances only at replica-agreed stream positions (DESIGN.md §8):
	//
	//   - RB handoffs: the master re-pins to the engine's current
	//     snapshot when it writes an entry (stamping the new version into
	//     the header) and slaves re-pin after consuming that entry;
	//   - forwarded calls: every monitored call is a lockstep rendezvous,
	//     so the replicas adopt a first-arriver-agreed version there
	//     (Engine.AgreeForward) — this is what lets a reload reach a
	//     stream whose pinned level monitors everything.
	//
	// Both sides therefore decide call i under the pin agreed at call
	// i-1, so a hot reload can never make replicas disagree on a
	// monitored/unmonitored routing decision.
	snap *policy.Snapshot
	// gp is the stream's shared forwarded-call agreement cell set; fwdSeq
	// counts this stream's policy-forwarded calls (identical across
	// replicas by induction).
	gp     *policy.GroupPin
	fwdSeq uint32
}

// IPMon is one replica's in-process monitor instance.
//
// Security-relevant representation choice: RBBase — the replica's mapped
// address of the replication buffer — lives only in this struct and in
// IK-B's per-call Context, mirroring the paper's register-only discipline
// (§3.1). It is never written into the replica's simulated address space;
// the leak test in the attack suite scans replica memory to prove it.
type IPMon struct {
	Replica int
	Proc    *vkernel.Process
	Buf     *rb.Buffer
	RBBase  mem.Addr
	FileMap *fdmap.FileMap
	Shadow  *fdmap.EpollShadow
	// Engine is the dynamic per-descriptor relaxation engine, shared by
	// every replica of one MVEE (decisions are pinned per stream, see
	// ltState.snap).
	Engine   *policy.Engine
	Temporal *policy.Temporal

	// LtidOf resolves a thread's logical thread id — its RB partition.
	LtidOf func(t *vkernel.Thread) int

	// BlockingOverride forces the slave wait strategy for the ablation
	// benches: nil = predict from the file map (§3.7), true = always use
	// the futex condvar, false = always spin.
	BlockingOverride *bool

	// handlers is immutable after construction: a dense bounds-checked
	// array (the per-call map hash was measurable on the fast path).
	handlers [vkernel.MaxSyscall]*Handler

	// states holds the per-logical-thread monitor state, one slot per RB
	// partition, published with an atomic pointer per slot: the per-call
	// lookup is one array index + one atomic load (the seed's mutex+map
	// pair was a global lock acquisition on every fast-path call). Slot
	// creation takes ip.mu (see state) so it serialises with MigrateRB's
	// rebase sweep; exactly one replica thread owns an ltid afterwards.
	states []atomic.Pointer[ltState]

	mu             sync.Mutex
	lastDivergence string
	stats          counters
}

// Config bundles IP-MON construction parameters.
type Config struct {
	Replica int
	Proc    *vkernel.Process
	Buf     *rb.Buffer
	RBBase  mem.Addr
	FileMap *fdmap.FileMap
	Shadow  *fdmap.EpollShadow
	// Engine is the shared relaxation engine; nil selects a static
	// SOCKET_RW engine (the library default).
	Engine   *policy.Engine
	Temporal *policy.Temporal
	LtidOf   func(t *vkernel.Thread) int
	// BlockingOverride: see IPMon.BlockingOverride.
	BlockingOverride *bool
}

// New creates a replica's IP-MON instance.
func New(cfg Config) *IPMon {
	if cfg.Engine == nil {
		cfg.Engine = policy.NewEngine(policy.LevelRules(policy.SocketRWLevel))
	}
	ip := &IPMon{
		Replica:          cfg.Replica,
		Proc:             cfg.Proc,
		Buf:              cfg.Buf,
		RBBase:           cfg.RBBase,
		FileMap:          cfg.FileMap,
		Shadow:           cfg.Shadow,
		Engine:           cfg.Engine,
		Temporal:         cfg.Temporal,
		LtidOf:           cfg.LtidOf,
		BlockingOverride: cfg.BlockingOverride,
		states:           make([]atomic.Pointer[ltState], cfg.Buf.Partitions()),
	}
	// Handlers are built for the full fast path; routing (the IK-B mask)
	// and MAYBE_CHECKED decide what actually runs unmonitored.
	ip.handlers = buildHandlers(policy.NewSpatial(policy.SocketRWLevel))
	return ip
}

// Stats snapshots the counters.
func (ip *IPMon) Stats() Stats {
	ip.mu.Lock()
	last := ip.lastDivergence
	ip.mu.Unlock()
	return Stats{
		Dispatched:      ip.stats.dispatched.Load(),
		Unmonitored:     ip.stats.unmonitored.Load(),
		ForwardedPolicy: ip.stats.forwardedPolicy.Load(),
		ForwardedSignal: ip.stats.forwardedSignal.Load(),
		ForwardedTooBig: ip.stats.forwardedTooBig.Load(),
		TemporalExempt:  ip.stats.temporalExempt.Load(),
		Divergences:     ip.stats.divergences.Load(),
		LastDivergence:  last,
	}
}

// SupportedCalls reports how many syscalls have fast-path handlers.
func (ip *IPMon) SupportedCalls() int {
	n := 0
	for _, h := range ip.handlers {
		if h != nil {
			n++
		}
	}
	return n
}

// UnmonitoredMask is the registration mask for IK-B (§3.5). The mask must
// cover every call any policy could ever exempt: the relaxation engine
// hot-reloads rules after registration (re-registering mid-run is not a
// thing, §3.5), and the temporal policy can stochastically exempt calls
// the spatial level would monitor (§3.4) — so the mask is the whole
// Table 1 fast-path set and MAYBE_CHECKED enforces the live per-fd level
// on every call. IK-B independently refuses to complete anything outside
// this set (policy.Grantable), so widening the registration does not
// widen what can actually run unmonitored.
func (ip *IPMon) UnmonitoredMask() vkernel.SyscallMask {
	return policy.NewSpatial(policy.SocketRWLevel).UnmonitoredSet()
}

// MigrateRB installs a new RB mapping address after an IK-B-driven
// re-randomisation (§4's periodic-move extension). Existing writers and
// readers keep working: their cursors are segment-relative; only the
// futex addressing base changes.
func (ip *IPMon) MigrateRB(base mem.Addr) {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	ip.RBBase = base
	for i := range ip.states {
		st := ip.states[i].Load()
		if st == nil {
			continue
		}
		if st.w != nil {
			st.w.Rebase(base)
		}
		if st.r != nil {
			st.r.Rebase(base)
		}
	}
}

func (ip *IPMon) bumpTemporal() {
	ip.stats.temporalExempt.Add(1)
}

// state returns the per-ltid monitor state, creating cursors on first
// use. The lookup is one array index plus one atomic load — the fast
// path holds no lock at all. First use takes ip.mu (double-checked), so
// cursor creation cannot race MigrateRB's rebase sweep: a freshly
// created cursor always carries the current RBBase.
//
// New streams pin the engine's *initial* snapshot, not the current one:
// replicas create a given ltid's state at different host times, and only
// version 1 is guaranteed to be what every replica saw at that stream
// position. The pin catches up through the stream's own RB entries.
func (ip *IPMon) state(ltid int) *ltState {
	slot := &ip.states[ltid%len(ip.states)]
	if st := slot.Load(); st != nil {
		return st
	}
	ip.mu.Lock() // serialise creation with MigrateRB's rebase sweep
	st := slot.Load()
	if st == nil {
		st = &ltState{snap: ip.Engine.Initial(), gp: ip.Engine.GroupPinFor(ltid)}
		if ip.Replica == 0 {
			st.w = ip.Buf.NewWriter(ltid%ip.Buf.Partitions(), ip.RBBase)
		} else {
			st.r = ip.Buf.NewReader(ltid%ip.Buf.Partitions(), ip.Replica, ip.RBBase)
		}
		slot.Store(st)
	}
	ip.mu.Unlock()
	return st
}

// Entry is the system call entry point IK-B forwards unmonitored calls to
// (Figure 2, step 2). It runs on the replica thread itself — in-process,
// no context switch.
func (ip *IPMon) Entry(ctx *ikb.Context) vkernel.Result {
	t := ctx.Thread
	c := ctx.Call
	t.SetInIPMon(true)
	defer t.SetInIPMon(false)

	ip.stats.dispatched.Add(1)
	var h *Handler
	if uint(c.Num) < uint(len(ip.handlers)) {
		h = ip.handlers[c.Num]
	}

	if h == nil {
		// Registered mask and handler table disagree — be conservative.
		return ctx.ForwardToMonitor()
	}

	ltid := 0
	if ip.LtidOf != nil {
		ltid = ip.LtidOf(t)
	}
	// Resolve the stream's pinned policy snapshot. Overflow ltids (beyond
	// the RB partition count) have no stream to advance a pin through, so
	// they stay on the initial snapshot — deterministic across replicas,
	// and harmless: they are forwarded to the lockstep path below no
	// matter what the policy says.
	var st *ltState
	var snap *policy.Snapshot
	if ltid < ip.Buf.Partitions() {
		st = ip.state(ltid)
		snap = st.snap
	} else {
		snap = ip.Engine.Initial()
	}

	// MAYBE_CHECKED: policy verification (Listing 1) against the pinned
	// snapshot's layered per-descriptor rules.
	if h.MaybeChecked != nil && h.MaybeChecked(ip, t, c, snap) {
		ip.stats.forwardedPolicy.Add(1)
		if ip.Temporal != nil {
			ip.Temporal.Approve(ltid, c.Num)
		}
		// Policy pin advance at a forwarded call: the call rendezvouses in
		// GHUMVEE, so every replica passes this same stream position —
		// adopt the first-arriver-agreed snapshot for the decisions that
		// follow (the current call was decided under the old pin on every
		// replica).
		if st != nil {
			seq := st.fwdSeq
			st.fwdSeq++
			if ns := ip.Engine.AgreeForward(st.gp, seq); ns != nil {
				st.snap = ns
			}
		}
		return ctx.ForwardToMonitor()
	}

	// §3.8: GHUMVEE raised the signals-pending flag; restart as a
	// monitored call so the monitor can deliver at a rendezvous. Checked
	// AFTER the policy decision: the flag is raised asynchronously, so
	// replicas may observe it differently for the same logical call — it
	// must therefore not influence the deterministic per-stream state
	// (the fwdSeq agreement counter, temporal approval streaks) that the
	// MaybeChecked branch maintains.
	if ip.Buf.SignalsPending() {
		ip.stats.forwardedSignal.Add(1)
		return ctx.ForwardToMonitor()
	}

	if h.PreSide != nil {
		h.PreSide(ip, t, c)
	}

	// Threads beyond the partitioned RB's capacity fall back to the
	// lockstep path rather than sharing a partition (each replica thread
	// must own its RB position, §3.2).
	if st == nil {
		ip.stats.forwardedTooBig.Add(1)
		return ctx.ForwardToMonitor()
	}

	if ip.Replica == 0 {
		return ip.masterPath(ctx, h, st)
	}
	return ip.slavePath(ctx, h, st)
}

// masterPath: PRECALL logs args into the RB, the call is restarted with
// the token intact, POSTCALL replicates the results (§3.3). Input and
// output payloads are gathered into the logical thread's reusable scratch
// buffer, so a steady-state call allocates nothing.
func (ip *IPMon) masterPath(ctx *ikb.Context, h *Handler, st *ltState) vkernel.Result {
	t := ctx.Thread
	c := ctx.Call

	inPayload := h.GatherIn(ip, t, c, st.scratch[:0])
	if inPayload != nil {
		st.scratch = inPayload
	}
	outCap := h.OutCap(ip, c)

	var flags uint32
	if h.MasterOnly {
		flags |= rb.FlagMasterCall
	}
	blocking := blockingExpected(ip, h.Desc, c)
	if ip.BlockingOverride != nil {
		blocking = *ip.BlockingOverride
	}
	if blocking {
		flags |= rb.FlagBlocking
	}
	// Master-ahead pipeline (DESIGN.md §9): a checked, policy-batchable,
	// non-blocking call is completed without waiting for slave
	// consumption — its entry is staged and published by the next group
	// commit. Sensitive calls (blocking, descriptor-lifecycle, special
	// handling) keep immediate publication so slaves overlap with the
	// master's execution, and they flush the staged run first (inside
	// Reserve) to preserve publication order.
	if !blocking && st.w.Pipelined() && batchableFast(h.Desc, c.Num) {
		flags |= rb.FlagBatched
	}

	// Policy pin advance (engine hot reload): re-pin the stream to the
	// engine's current snapshot and stamp its version into the entry so
	// slaves re-pin at the same stream position. The pin moves only if
	// Reserve succeeds — a forwarded call writes no entry, so slaves
	// would never learn of the move.
	cand := ip.Engine.Current()
	st.w.SetPolicyVer(cand.Version())

	res, err := st.w.Reserve(t, c, flags, inPayload, outCap)
	if err != nil {
		// CALCSIZE overflow: forward to GHUMVEE (§3.3).
		ip.stats.forwardedTooBig.Add(1)
		return ctx.ForwardToMonitor()
	}
	st.snap = cand

	// Step 3: restart the call with the authorization token intact.
	r := ctx.CompleteWithToken(ctx.Token, c)

	// The input payload has been copied into the RB; the scratch buffer
	// is free for the output gather.
	st.scratch = h.GatherOut(ip, t, c, r, st.scratch[:0])
	var errno vkernel.Errno
	if !r.Ok() {
		errno = r.Errno
	}
	res.Complete(t, r.Val, errno, st.scratch)

	ip.stats.unmonitored.Add(1)
	return r
}

// slavePath: compare own arguments against the master's record, then
// either consume replicated results (MASTERCALL) or execute the local
// call (process-local calls like futex/nanosleep). The comparison runs
// against the master's RB entry in place — the only copy is the slave's
// own gather into its reusable scratch buffer.
func (ip *IPMon) slavePath(ctx *ikb.Context, h *Handler, st *ltState) vkernel.Result {
	t := ctx.Thread
	c := ctx.Call

	ev, err := st.r.Next(t)
	if err != nil {
		ip.divergenceCrash(t, err.Error())
		return vkernel.Result{Errno: vkernel.EPERM}
	}

	// Policy pin advance: the entry carries the snapshot version the
	// master pinned after writing it; adopt it for this stream's *next*
	// decision (the current call was already decided under the previous
	// pin — on both sides). Unknown versions are impossible through the
	// engine (ByVersion only serves installed snapshots); a zero or
	// unknown stamp leaves the pin unchanged.
	if ev.PolicyVer != st.snap.Version() {
		if ns := ip.Engine.ByVersion(ev.PolicyVer); ns != nil {
			st.snap = ns
		}
	}

	slavePayload := h.GatherIn(ip, t, c, st.scratch[:0])
	if slavePayload != nil {
		st.scratch = slavePayload
	}
	if err := ev.CompareCall(t, c, h.RegMask, slavePayload); err != nil {
		// "IP-MON triggers an intentional crash, thereby signalling
		// GHUMVEE through the ptrace mechanism" (§3.3).
		ip.divergenceCrash(t, err.Error())
		return vkernel.Result{Errno: vkernel.EPERM}
	}

	if h.MasterOnly {
		// Abort the original call; results come from the RB.
		ctx.AbortCall()
		ret, errno, out := ev.WaitResults(t)
		r := vkernel.Result{Val: ret, Errno: errno}
		if r.Ok() && h.ApplyOut != nil {
			h.ApplyOut(ip, t, c, out, r)
		}
		ev.Consume()
		ip.stats.unmonitored.Add(1)
		return r
	}

	// Process-local call: execute our own copy with our own token.
	r := ctx.CompleteWithToken(ctx.Token, c)
	ev.WaitResults(t) // drain the master's results for ordering
	ev.Consume()
	ip.stats.unmonitored.Add(1)
	return r
}

// batchableFast reports whether a fast-path call's publication may be
// deferred to a group commit. It reuses the epoch-batching class
// (policy.Batchable: the read-only BASE + NONSOCKET_RO sets) plus the
// same descriptor-level guards GHUMVEE's epoch engine applies: no
// special handling, no descriptor lifecycle effects. Deferral never
// weakens detection — the master executes before any slave check in
// both modes — it only bounds how late the slave's comparison can run.
func batchableFast(d *sysdesc.Desc, nr int) bool {
	return d != nil && d.Special == sysdesc.SpecNone &&
		!d.FDCreating && !d.FDClosing &&
		policy.Batchable(nr)
}

// FlushThread publishes any staged group-commit entries of t's logical
// stream — the hard-barrier hook. IK-B invokes it on every route to the
// CP monitor (rendezvous, signals-pending restarts, RB overflow
// forwards) and the orchestrator invokes it at thread exit, so a slave
// can always consume its stream up to any point where the replica set
// synchronises. No-op on slave replicas, on non-pipelined buffers and
// on streams with nothing staged.
func (ip *IPMon) FlushThread(t *vkernel.Thread) {
	if ip.Replica != 0 || !ip.Buf.Pipelined() {
		return
	}
	ltid := 0
	if ip.LtidOf != nil {
		ltid = ip.LtidOf(t)
	}
	if ltid >= ip.Buf.Partitions() {
		return
	}
	if st := ip.states[ltid].Load(); st != nil && st.w != nil {
		st.w.Flush(t)
	}
}

func (ip *IPMon) divergenceCrash(t *vkernel.Thread, reason string) {
	ip.stats.divergences.Add(1)
	ip.mu.Lock()
	ip.lastDivergence = reason
	ip.mu.Unlock()
	t.Clock.Advance(model.CostSignalDeliver)
	t.Crash("ipmon divergence: " + reason)
}
