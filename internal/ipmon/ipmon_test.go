package ipmon

import (
	"testing"

	"remon/internal/fdmap"
	"remon/internal/mem"
	"remon/internal/policy"
	"remon/internal/sysdesc"
	"remon/internal/vkernel"
)

// handlerEnv gives the handler-level tests a process with an arena.
type handlerEnv struct {
	k   *vkernel.Kernel
	p   *vkernel.Process
	t   *vkernel.Thread
	a   mem.Addr
	off uint64
}

func newHandlerEnv(t *testing.T) *handlerEnv {
	t.Helper()
	k := vkernel.New(nil)
	p := k.NewProcess("h", 3, 0)
	th := p.NewThread(nil)
	r, err := p.Mem.Map(1<<18, mem.ProtRead|mem.ProtWrite, "arena")
	if err != nil {
		t.Fatal(err)
	}
	return &handlerEnv{k: k, p: p, t: th, a: r.Start}
}

func (e *handlerEnv) put(b []byte) mem.Addr {
	a := e.a + mem.Addr(e.off)
	e.off += uint64((len(b) + 15) &^ 15)
	if err := e.p.Mem.Write(a, b); err != nil {
		panic(err)
	}
	return a
}

func (e *handlerEnv) alloc(n int) mem.Addr {
	a := e.a + mem.Addr(e.off)
	e.off += uint64((n + 15) &^ 15)
	return a
}

func TestGatherInWriteBuffer(t *testing.T) {
	e := newHandlerEnv(t)
	data := e.put([]byte("payload-bytes"))
	c := &vkernel.Call{Num: vkernel.SysWrite, Args: [6]uint64{1, uint64(data), 13}}
	out := genericGatherIn(nil, e.t, c, nil)
	frame, _, ok := nextFrame(out)
	if !ok || string(frame) != "payload-bytes" {
		t.Fatalf("gathered %q", frame)
	}
}

func TestGatherInPath(t *testing.T) {
	e := newHandlerEnv(t)
	path := e.put([]byte("/etc/target\x00"))
	c := &vkernel.Call{Num: vkernel.SysAccess, Args: [6]uint64{uint64(path), 0}}
	out := genericGatherIn(nil, e.t, c, nil)
	frame, _, ok := nextFrame(out)
	if !ok || string(frame) != "/etc/target\x00" {
		t.Fatalf("gathered path %q", frame)
	}
}

func TestGatherOutApplyOutRoundTrip(t *testing.T) {
	e := newHandlerEnv(t)
	// Master's out buffer.
	src := e.put([]byte("read-result-abc"))
	c := &vkernel.Call{Num: vkernel.SysRead, Args: [6]uint64{3, uint64(src), 15}}
	r := vkernel.Result{Val: 15}
	out := genericGatherOut(nil, e.t, c, r, nil)

	// Slave's differently-located buffer.
	dst := e.alloc(32)
	c2 := &vkernel.Call{Num: vkernel.SysRead, Args: [6]uint64{3, uint64(dst), 15}}
	genericApplyOut(nil, e.t, c2, out, r)
	got, err := e.p.Mem.ReadBytes(dst, 15)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "read-result-abc" {
		t.Fatalf("applied %q", got)
	}
}

func TestOutCapReservations(t *testing.T) {
	read := &vkernel.Call{Num: vkernel.SysRead, Args: [6]uint64{3, 0x1000, 512}}
	if capn := genericOutCap(nil, read); capn < 512 {
		t.Fatalf("read out cap = %d, want >= 512", capn)
	}
	stat := &vkernel.Call{Num: vkernel.SysStat, Args: [6]uint64{0x1000, 0x2000}}
	if capn := genericOutCap(nil, stat); capn < vkernel.StatBufSize {
		t.Fatalf("stat out cap = %d", capn)
	}
	epw := &vkernel.Call{Num: vkernel.SysEpollWait, Args: [6]uint64{4, 0x1000, 8, 0}}
	if capn := genericOutCap(nil, epw); capn < 8*vkernel.EpollEventSize {
		t.Fatalf("epoll_wait out cap = %d", capn)
	}
}

func TestEpollCtlGatherInExcludesCookie(t *testing.T) {
	e := newHandlerEnv(t)
	ev := make([]byte, vkernel.EpollEventSize)
	ev[0] = 1                 // events mask
	ev[8], ev[9] = 0xDE, 0xAD // replica-specific cookie bytes
	addr := e.put(ev)
	c := &vkernel.Call{Num: vkernel.SysEpollCtl, Args: [6]uint64{4, vkernel.EpollCtlAdd, 5, uint64(addr)}}
	out := epollCtlGatherIn(nil, e.t, c, nil)
	frame, _, ok := nextFrame(out)
	if !ok || len(frame) != 8 {
		t.Fatalf("epoll_ctl gather = %d bytes, want 8 (mask only)", len(frame))
	}
	if frame[0] != 1 {
		t.Fatal("events mask lost")
	}
}

func TestEpollWaitFDTranslation(t *testing.T) {
	e := newHandlerEnv(t)
	shadow := fdmap.NewEpollShadow(2)
	shadow.Register(0, 7, 0xAAAA)
	shadow.Register(1, 7, 0xBBBB)

	// Master's raw events carry its cookie; GatherOut converts to fd.
	ev := make([]byte, vkernel.EpollEventSize)
	ev[0] = 1
	putLeU64(ev[8:], 0xAAAA)
	src := e.put(ev)
	c := &vkernel.Call{Num: vkernel.SysEpollWait, Args: [6]uint64{4, uint64(src), 4, 0}}
	r := vkernel.Result{Val: 1}
	master := &IPMon{Shadow: shadow, Replica: 0}
	out := epollWaitGatherOut(master, e.t, c, r, nil)
	frame, _, _ := nextFrame(out)
	if got := leU64(frame[8:]); got != 7 {
		t.Fatalf("RB payload cookie field = %#x, want fd 7", got)
	}

	// Slave applies: fd back to its own cookie.
	dst := e.alloc(vkernel.EpollEventSize)
	c2 := &vkernel.Call{Num: vkernel.SysEpollWait, Args: [6]uint64{4, uint64(dst), 4, 0}}
	slave := &IPMon{Shadow: shadow, Replica: 1}
	epollWaitApplyOut(slave, e.t, c2, out, r)
	got, _ := e.p.Mem.ReadBytes(dst, vkernel.EpollEventSize)
	if ck := leU64(got[8:]); ck != 0xBBBB {
		t.Fatalf("slave cookie = %#x, want 0xBBBB", ck)
	}
}

func TestMaybeCheckedPolicyDecisions(t *testing.T) {
	e := newHandlerEnv(t)
	fm := fdmap.New(mem.NewSharedSegment(11, fdmap.MapSize))
	fm.Set(3, fdmap.TypeRegular, false)
	fm.Set(4, fdmap.TypeSocket, false)
	fm.Set(5, fdmap.TypeSpecial, false)

	ip := &IPMon{FileMap: fm}
	snap := policy.NewEngine(policy.LevelRules(policy.NonsocketRWLevel)).Current()

	read := &vkernel.Call{Num: vkernel.SysRead, Args: [6]uint64{3, 0, 8}}
	if genericMaybeChecked(ip, e.t, read, snap) {
		t.Fatal("file read forwarded at NONSOCKET_RW")
	}
	readSock := &vkernel.Call{Num: vkernel.SysRead, Args: [6]uint64{4, 0, 8}}
	if !genericMaybeChecked(ip, e.t, readSock, snap) {
		t.Fatal("socket read NOT forwarded at NONSOCKET_RW")
	}
	readSpecial := &vkernel.Call{Num: vkernel.SysRead, Args: [6]uint64{5, 0, 8}}
	if !genericMaybeChecked(ip, e.t, readSpecial, snap) {
		t.Fatal("special-file read NOT forwarded (maps filtering, §3.1)")
	}
	gtod := &vkernel.Call{Num: vkernel.SysGettimeofday, Args: [6]uint64{0}}
	if genericMaybeChecked(ip, e.t, gtod, snap) {
		t.Fatal("gettimeofday forwarded despite BASE grant")
	}
	// A socket write at NONSOCKET_RW must be forwarded.
	writeSock := &vkernel.Call{Num: vkernel.SysWrite, Args: [6]uint64{4, 0, 8}}
	if !genericMaybeChecked(ip, e.t, writeSock, snap) {
		t.Fatal("socket write NOT forwarded at NONSOCKET_RW")
	}
}

// TestMaybeCheckedLayeredRules exercises the dynamic engine's per-fd and
// per-class layers through the dispatcher's decision function: the same
// syscall on different descriptors resolves different effective levels.
func TestMaybeCheckedLayeredRules(t *testing.T) {
	e := newHandlerEnv(t)
	fm := fdmap.New(mem.NewSharedSegment(13, fdmap.MapSize))
	fm.Set(3, fdmap.TypeRegular, false)
	fm.Set(4, fdmap.TypeSocket, false)
	fm.Set(6, fdmap.TypeSocket, false)

	ip := &IPMon{FileMap: fm}
	// Global BASE, sockets at SOCKET_RO, fd 6 overridden to SOCKET_RW.
	snap := policy.NewEngine(policy.Rules{
		Default: policy.BaseLevel,
		ByClass: map[policy.FDClass]policy.Level{policy.FDSock: policy.SocketROLevel},
		ByFD:    map[int]policy.Level{6: policy.SocketRWLevel},
	}).Current()

	// File read: global BASE applies -> monitored.
	readFile := &vkernel.Call{Num: vkernel.SysRead, Args: [6]uint64{3, 0, 8}}
	if !genericMaybeChecked(ip, e.t, readFile, snap) {
		t.Fatal("file read unmonitored despite BASE default")
	}
	// Socket read: class rule SOCKET_RO -> unmonitored.
	readSock := &vkernel.Call{Num: vkernel.SysRead, Args: [6]uint64{4, 0, 8}}
	if genericMaybeChecked(ip, e.t, readSock, snap) {
		t.Fatal("socket read forwarded despite SOCKET_RO class rule")
	}
	// Socket write on fd 4: class rule SOCKET_RO -> monitored.
	writeSock := &vkernel.Call{Num: vkernel.SysWrite, Args: [6]uint64{4, 0, 8}}
	if !genericMaybeChecked(ip, e.t, writeSock, snap) {
		t.Fatal("socket write unmonitored at SOCKET_RO class rule")
	}
	// Socket write on fd 6: per-fd override SOCKET_RW -> unmonitored.
	writeOvr := &vkernel.Call{Num: vkernel.SysWrite, Args: [6]uint64{6, 0, 8}}
	if genericMaybeChecked(ip, e.t, writeOvr, snap) {
		t.Fatal("per-fd SOCKET_RW override not honoured")
	}
	// Descriptor-less BASE call: always unmonitored here.
	gtod := &vkernel.Call{Num: vkernel.SysGettimeofday}
	if genericMaybeChecked(ip, e.t, gtod, snap) {
		t.Fatal("gettimeofday forwarded at BASE default")
	}
}

func TestBlockingPrediction(t *testing.T) {
	fm := fdmap.New(mem.NewSharedSegment(12, fdmap.MapSize))
	fm.Set(3, fdmap.TypeRegular, false)
	fm.Set(4, fdmap.TypeSocket, false)
	fm.Set(5, fdmap.TypeSocket, true) // O_NONBLOCK socket
	ip := &IPMon{FileMap: fm}

	d := sysdesc.Lookup(vkernel.SysRead)
	if blockingExpected(ip, d, &vkernel.Call{Num: vkernel.SysRead, Args: [6]uint64{3}}) {
		t.Fatal("regular file read predicted blocking")
	}
	if !blockingExpected(ip, d, &vkernel.Call{Num: vkernel.SysRead, Args: [6]uint64{4}}) {
		t.Fatal("socket read predicted non-blocking")
	}
	if blockingExpected(ip, d, &vkernel.Call{Num: vkernel.SysRead, Args: [6]uint64{5}}) {
		t.Fatal("O_NONBLOCK socket read predicted blocking (§3.6)")
	}
	lseek := sysdesc.Lookup(vkernel.SysLseek)
	if blockingExpected(ip, lseek, &vkernel.Call{Num: vkernel.SysLseek, Args: [6]uint64{4}}) {
		t.Fatal("lseek predicted blocking")
	}
}

func TestHandlerTableCoverage(t *testing.T) {
	handlers := buildHandlers(policy.NewSpatial(policy.SocketRWLevel))
	count := 0
	for nr, h := range handlers {
		if h == nil {
			continue
		}
		count++
		if h.Desc == nil {
			t.Errorf("%s: handler without descriptor", vkernel.SyscallName(nr))
		}
		if h.GatherIn == nil || h.OutCap == nil || h.GatherOut == nil || h.ApplyOut == nil {
			t.Errorf("%s: incomplete handler", vkernel.SyscallName(nr))
		}
	}
	// The paper's fast path covers 67 calls; ours must be comparable.
	if count < 50 {
		t.Fatalf("only %d fast-path handlers", count)
	}
	// Sensitive calls must have no handler.
	for _, nr := range []int{vkernel.SysOpen, vkernel.SysMmap, vkernel.SysClone, vkernel.SysKill} {
		if handlers[nr] != nil {
			t.Errorf("%s has a fast-path handler — it must always be monitored", vkernel.SyscallName(nr))
		}
	}
}

func TestFrameCodec(t *testing.T) {
	var out []byte
	out = appendFrame(out, []byte("one"))
	out = appendFrame(out, nil)
	out = appendFrame(out, []byte("three"))
	f1, rest, ok := nextFrame(out)
	if !ok || string(f1) != "one" {
		t.Fatalf("frame 1 = %q, %v", f1, ok)
	}
	f2, rest, ok := nextFrame(rest)
	if !ok || len(f2) != 0 {
		t.Fatalf("frame 2 = %q", f2)
	}
	f3, rest, ok := nextFrame(rest)
	if !ok || string(f3) != "three" {
		t.Fatalf("frame 3 = %q", f3)
	}
	if _, _, ok := nextFrame(rest); ok {
		t.Fatal("phantom frame")
	}
	if _, _, ok := nextFrame([]byte{1, 0, 0}); ok {
		t.Fatal("truncated header accepted")
	}
	if _, _, ok := nextFrame([]byte{10, 0, 0, 0, 1}); ok {
		t.Fatal("truncated body accepted")
	}
}
