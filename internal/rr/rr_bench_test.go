package rr

import (
	"sync"
	"testing"

	"remon/internal/vkernel"
	"remon/internal/vnet"
)

// benchThreads builds one thread per logical replayer.
func benchThreads(n int) []*vkernel.Thread {
	k := vkernel.New(vnet.New(vnet.Loopback))
	p := k.NewProcess("rr-bench", 1, 0)
	out := make([]*vkernel.Thread, n)
	for i := range out {
		out[i] = p.NewThread(nil)
	}
	return out
}

// BenchmarkReplaySync measures the replay path under thread contention:
// a pre-recorded interleaving of nThreads logical threads is replayed by
// nThreads goroutines sharing one slave agent. The old engine broadcast
// every parked replayer awake on each record and each cursor advance;
// the indexed log and keyed wakes make both O(1) targeted operations.
func BenchmarkReplaySync(b *testing.B) {
	for _, nThreads := range []int{2, 8, 16} {
		b.Run(map[int]string{2: "t2", 8: "t8", 16: "t16"}[nThreads], func(b *testing.B) {
			const opsPerThread = 64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				log := NewLog()
				rec := NewAgent(log, true)
				threads := benchThreads(nThreads + 1)
				// Round-robin interleaving: the worst case for broadcast
				// wakes (every consume unblocks a different thread).
				for op := 0; op < opsPerThread; op++ {
					for lt := 0; lt < nThreads; lt++ {
						rec.Sync(threads[nThreads], lt, uint64(lt)*7+1, OpLock)
					}
				}
				log.Close()
				slave := NewAgent(log, false)
				b.StartTimer()
				var wg sync.WaitGroup
				for lt := 0; lt < nThreads; lt++ {
					wg.Add(1)
					go func(lt int) {
						defer wg.Done()
						for op := 0; op < opsPerThread; op++ {
							slave.Sync(threads[lt], lt, uint64(lt)*7+1, OpLock)
						}
					}(lt)
				}
				wg.Wait()
			}
			b.ReportMetric(float64(b.N*opsPerThread*nThreads), "replayed-ops")
		})
	}
}

// BenchmarkRecordAwaitLag measures the live record/replay pipeline: the
// recorder streams events while replayers chase the log, exercising the
// position-indexed await wake path.
func BenchmarkRecordAwaitLag(b *testing.B) {
	const nThreads = 8
	const opsPerThread = 64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		log := NewLog()
		rec := NewAgent(log, true)
		slave := NewAgent(log, false)
		threads := benchThreads(nThreads + 1)
		b.StartTimer()
		var wg sync.WaitGroup
		for lt := 0; lt < nThreads; lt++ {
			wg.Add(1)
			go func(lt int) {
				defer wg.Done()
				for op := 0; op < opsPerThread; op++ {
					slave.Sync(threads[lt], lt, uint64(lt)+1, OpUnlock)
				}
			}(lt)
		}
		for op := 0; op < opsPerThread; op++ {
			for lt := 0; lt < nThreads; lt++ {
				rec.Sync(threads[nThreads], lt, uint64(lt)+1, OpUnlock)
			}
		}
		log.Close()
		wg.Wait()
	}
}
