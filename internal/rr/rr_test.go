package rr

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"remon/internal/vkernel"
)

func newThread() *vkernel.Thread {
	k := vkernel.New(nil)
	return k.NewProcess("rr-test", 1, 0).NewThread(nil)
}

func TestMasterRecords(t *testing.T) {
	log := NewLog()
	a := NewAgent(log, true)
	th := newThread()
	a.Sync(th, 0, 100, OpLock)
	a.Sync(th, 1, 100, OpLock)
	if log.Len() != 2 {
		t.Fatalf("log length = %d", log.Len())
	}
}

func TestSlaveReplaysInOrder(t *testing.T) {
	log := NewLog()
	master := NewAgent(log, true)
	slave := NewAgent(log, false)
	mt := newThread()

	// Master records: thread 1 locks, then thread 0 locks.
	master.Sync(mt, 1, 42, OpLock)
	master.Sync(mt, 0, 42, OpLock)

	// Slave threads arrive in the opposite order; replay must force the
	// recorded order: ltid 1 first.
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, ltid := range []int{0, 1} {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			th := newThread()
			slave.Sync(th, l, 42, OpLock)
			mu.Lock()
			order = append(order, l)
			mu.Unlock()
		}(ltid)
	}
	wg.Wait()
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("replay order = %v, want [1 0]", order)
	}
}

func TestSlaveBlocksUntilRecorded(t *testing.T) {
	log := NewLog()
	master := NewAgent(log, true)
	slave := NewAgent(log, false)
	done := make(chan struct{})
	go func() {
		defer close(done)
		slave.Sync(newThread(), 0, 7, OpLock)
	}()
	select {
	case <-done:
		t.Fatal("slave proceeded before master recorded")
	default:
	}
	master.Sync(newThread(), 0, 7, OpLock)
	<-done
}

func TestCloseReleasesSlaves(t *testing.T) {
	log := NewLog()
	slave := NewAgent(log, false)
	done := make(chan struct{})
	go func() {
		defer close(done)
		slave.Sync(newThread(), 3, 9, OpUnlock)
	}()
	log.Close()
	<-done // must not hang
}

func TestLongSequenceReplay(t *testing.T) {
	log := NewLog()
	master := NewAgent(log, true)
	slave := NewAgent(log, false)
	mt := newThread()

	const n = 500
	want := make([]Event, n)
	for i := 0; i < n; i++ {
		want[i] = Event{LTID: i % 3, Obj: uint64(i % 5), Kind: OpLock}
		master.Sync(mt, want[i].LTID, want[i].Obj, OpLock)
	}

	var mu sync.Mutex
	var got []Event
	var wg sync.WaitGroup
	// Three slave threads, one per ltid, each replays its own events.
	for ltid := 0; ltid < 3; ltid++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			th := newThread()
			for i := 0; i < n; i++ {
				if want[i].LTID != l {
					continue
				}
				slave.Sync(th, l, want[i].Obj, OpLock)
				mu.Lock()
				got = append(got, Event{LTID: l, Obj: want[i].Obj, Kind: OpLock})
				mu.Unlock()
			}
		}(ltid)
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("replayed %d events, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRecordChargesLessThanReplay(t *testing.T) {
	log := NewLog()
	master := NewAgent(log, true)
	slave := NewAgent(log, false)
	mt := newThread()
	st := newThread()
	master.Sync(mt, 0, 1, OpLock)
	slave.Sync(st, 0, 1, OpLock)
	if mt.Clock.Now() >= st.Clock.Now() {
		t.Fatalf("record cost %v should be below replay cost %v",
			mt.Clock.Now(), st.Clock.Now())
	}
}

// TestLaggingRecorderWakesParkedKeys drives the case the indexed-wake
// protocol must not drop: a replayer parks on its operation key while the
// recorder has not yet written the matching event, and the cursor is
// already at the position that event will occupy. The record-side agent
// notification must hand it the turn.
func TestLaggingRecorderWakesParkedKeys(t *testing.T) {
	for round := 0; round < 50; round++ {
		log := NewLog()
		rec := NewAgent(log, true)
		slave := NewAgent(log, false)
		th := make([]*vkernel.Thread, 4)
		for i := range th {
			th[i] = newThread()
		}

		// The replay total order itself is enforced (and separately tested
		// by TestSlaveReplaysInOrder); what must not happen here is a
		// deadlock from a lost wake, so completion of all three replayers
		// is the assertion.
		var wg sync.WaitGroup
		done := make(chan struct{})
		for lt := 1; lt <= 3; lt++ {
			wg.Add(1)
			go func(lt int) {
				defer wg.Done()
				slave.Sync(th[lt], lt, uint64(lt), OpLock)
			}(lt)
		}
		// Give replayers a chance to park before anything is recorded.
		runtime.Gosched()
		for lt := 3; lt >= 1; lt-- { // reverse spawn order
			rec.Sync(th[0], lt, uint64(lt), OpLock)
		}
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: parked replayer never woken (lost wake)", round)
		}
		log.Close()
	}
}

// TestCloseReleasesKeyParkedSlaves: a replayer parked on its operation
// key (not a log position) must also drain when the log closes after the
// cursor has passed the end of the recorded sequence.
func TestCloseReleasesKeyParkedSlaves(t *testing.T) {
	log := NewLog()
	rec := NewAgent(log, true)
	slave := NewAgent(log, false)
	thA, thB := newThread(), newThread()

	rec.Sync(newThread(), 1, 1, OpLock) // single event A
	done := make(chan struct{})
	go func() {
		slave.Sync(thB, 2, 2, OpLock) // key B: parks (event A is not its turn)
		close(done)
	}()
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	slave.Sync(thA, 1, 1, OpLock) // consume A; cursor passes the end
	log.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key-parked replayer not released by Close")
	}
}
