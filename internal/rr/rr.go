// Package rr implements the record/replay agent ReMon embeds in each
// replica to rein in the non-determinism of multi-threaded programs
// (§2.3): the master records the order of user-space synchronisation
// operations; the slaves replay that order, forcing all replicas through
// the same interleaving and hence the same system call sequences.
package rr

import (
	"sync"

	"remon/internal/model"
	"remon/internal/vkernel"
)

// Event is one recorded synchronisation operation.
type Event struct {
	LTID int    // logical thread performing the operation
	Obj  uint64 // synchronisation object identity (lock address, etc.)
	Kind uint8  // operation kind (lock, unlock, spawn, ...)
}

// Operation kinds.
const (
	OpLock uint8 = iota
	OpUnlock
	OpSpawn
	OpCustom
)

// Log is the shared record of synchronisation order, written by the
// master's agent and read by the slaves'.
type Log struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []Event
	closed bool
}

// NewLog creates an empty log.
func NewLog() *Log {
	l := &Log{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Close marks the log finished (master exit); blocked slaves drain.
func (l *Log) Close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Len reports the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// record appends an event and wakes replaying slaves.
func (l *Log) record(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.cond.Broadcast()
	l.mu.Unlock()
}

// await blocks until event pos exists, then returns it. ok=false when the
// log closed first.
func (l *Log) await(pos int) (Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for pos >= len(l.events) && !l.closed {
		l.cond.Wait()
	}
	if pos < len(l.events) {
		return l.events[pos], true
	}
	return Event{}, false
}

// Agent is one replica's record/replay agent.
type Agent struct {
	log    *Log
	master bool

	mu     sync.Mutex
	cursor int
	gate   *sync.Cond
}

// NewAgent creates an agent. Exactly one agent per replica set records
// (the master's); the rest replay.
func NewAgent(log *Log, master bool) *Agent {
	a := &Agent{log: log, master: master}
	a.gate = sync.NewCond(&a.mu)
	return a
}

// Master reports whether this agent records.
func (a *Agent) Master() bool { return a.master }

// Sync orders one synchronisation operation. The master records and
// proceeds; a slave blocks until the replayed sequence reaches an event
// matching (ltid, obj, kind), preserving the recorded total order.
//
// Virtual time: recording costs CostRRRecord; replaying costs
// CostRRReplay per operation (§2.3's agent overhead).
func (a *Agent) Sync(t *vkernel.Thread, ltid int, obj uint64, kind uint8) {
	if a.master {
		t.Clock.Advance(model.CostRRRecord)
		a.log.record(Event{LTID: ltid, Obj: obj, Kind: kind})
		return
	}
	t.Clock.Advance(model.CostRRReplay)
	a.mu.Lock()
	for {
		pos := a.cursor
		a.mu.Unlock()
		e, ok := a.log.await(pos)
		a.mu.Lock()
		if !ok {
			// Log closed: run free (master is gone; the monitor's
			// divergence machinery owns correctness now).
			a.mu.Unlock()
			return
		}
		if pos != a.cursor {
			// Another thread consumed this slot; re-evaluate.
			continue
		}
		if e.LTID == ltid && e.Obj == obj && e.Kind == kind {
			a.cursor++
			a.gate.Broadcast()
			a.mu.Unlock()
			return
		}
		// Not our turn: wait for the cursor to move.
		a.gate.Wait()
	}
}
