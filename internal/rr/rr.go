// Package rr implements the record/replay agent ReMon embeds in each
// replica to rein in the non-determinism of multi-threaded programs
// (§2.3): the master records the order of user-space synchronisation
// operations; the slaves replay that order, forcing all replicas through
// the same interleaving and hence the same system call sequences.
//
// The log is indexed by sequence position and wakes are targeted: a
// recorded event wakes only the replayers blocked on that exact position,
// and consuming an event wakes only the thread that owns the next one.
// The broadcast-everyone-and-rescan protocol this replaces cost O(waiters)
// wakeups per operation under the log mutex.
package rr

import (
	"sync"

	"remon/internal/model"
	"remon/internal/vkernel"
)

// Event is one recorded synchronisation operation.
type Event struct {
	LTID int    // logical thread performing the operation
	Obj  uint64 // synchronisation object identity (lock address, etc.)
	Kind uint8  // operation kind (lock, unlock, spawn, ...)
}

// Operation kinds.
const (
	OpLock uint8 = iota
	OpUnlock
	OpSpawn
	OpCustom
)

// Log is the shared record of synchronisation order, written by the
// master's agent and read by the slaves'.
type Log struct {
	mu     sync.Mutex
	events []Event
	closed bool
	// waiters[pos] holds the wake channels of replayers blocked until
	// event pos exists. record wakes exactly the channels registered at
	// the appended position — a targeted wake instead of a broadcast.
	// Channels carry one token per use and recycle through chanPool.
	waiters  map[int][]chan struct{}
	chanPool []chan struct{}
	// subs are the replaying agents; record hands each newly appended
	// event to them (outside the log lock) so a thread parked on its
	// operation key is found even when its event is recorded after the
	// replay cursor already reached that position.
	subs []*Agent
}

// NewLog creates an empty log.
func NewLog() *Log {
	return &Log{waiters: map[int][]chan struct{}{}}
}

// getChan pops a pooled wake channel (l.mu held).
func (l *Log) getChan() chan struct{} {
	if n := len(l.chanPool); n > 0 {
		ch := l.chanPool[n-1]
		l.chanPool = l.chanPool[:n-1]
		return ch
	}
	return make(chan struct{}, 1)
}

// Close marks the log finished (master exit); blocked slaves drain.
// Both wait populations are woken: position waiters (they observe closed
// in await) and key-parked replayers in every subscribed agent (they
// re-check the cursor, and run free once the remaining events are
// consumed or the cursor passes the end).
func (l *Log) Close() {
	l.mu.Lock()
	l.closed = true
	for pos, ws := range l.waiters {
		for _, ch := range ws {
			ch <- struct{}{}
		}
		delete(l.waiters, pos)
	}
	subs := l.subs
	l.mu.Unlock()
	for _, a := range subs {
		a.wakeAllParked()
	}
}

// Len reports the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// record appends an event and wakes only the replayers awaiting its
// position, then offers the event to each replaying agent (whose turn
// owner may be parked on its key).
func (l *Log) record(e Event) {
	l.mu.Lock()
	pos := len(l.events)
	l.events = append(l.events, e)
	ws := l.waiters[pos]
	delete(l.waiters, pos)
	subs := l.subs
	for _, ch := range ws {
		ch <- struct{}{} // cap 1: never blocks (one token per registration)
	}
	l.mu.Unlock()
	for _, a := range subs {
		a.notifyRecorded(pos, e)
	}
}

// subscribe registers a replaying agent for record notifications.
func (l *Log) subscribe(a *Agent) {
	l.mu.Lock()
	l.subs = append(l.subs, a)
	l.mu.Unlock()
}

// get returns event pos if it exists (O(1) index), plus the closed flag.
func (l *Log) get(pos int) (e Event, exists, closed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if pos < len(l.events) {
		return l.events[pos], true, l.closed
	}
	return Event{}, false, l.closed
}

// await blocks until event pos exists, then returns it. ok=false when the
// log closed first.
func (l *Log) await(pos int) (Event, bool) {
	l.mu.Lock()
	for {
		if pos < len(l.events) {
			e := l.events[pos]
			l.mu.Unlock()
			return e, true
		}
		if l.closed {
			l.mu.Unlock()
			return Event{}, false
		}
		ch := l.getChan()
		l.waiters[pos] = append(l.waiters[pos], ch)
		l.mu.Unlock()
		<-ch
		l.mu.Lock()
		l.chanPool = append(l.chanPool, ch)
	}
}

// Agent is one replica's record/replay agent.
type Agent struct {
	log    *Log
	master bool

	mu     sync.Mutex
	cursor int
	// keyWait holds, per (ltid, obj, kind), the wake channels of threads
	// waiting for their operation's turn. Consuming an event wakes only
	// the owner of the next event — the replaced gate broadcast woke
	// every parked thread to re-check a cursor only one of them could
	// advance. Channels recycle through chanPool (one token per use).
	keyWait  map[Event][]chan struct{}
	chanPool []chan struct{}
	parked   int // threads currently waiting in keyWait
}

// NewAgent creates an agent. Exactly one agent per replica set records
// (the master's); the rest replay.
func NewAgent(log *Log, master bool) *Agent {
	a := &Agent{log: log, master: master, keyWait: map[Event][]chan struct{}{}}
	if !master {
		log.subscribe(a)
	}
	return a
}

// wakeAllParked releases every key-parked thread so it can re-examine
// the (now closed) log.
func (a *Agent) wakeAllParked() {
	a.mu.Lock()
	a.wakeAllParkedLocked()
	a.mu.Unlock()
}

func (a *Agent) wakeAllParkedLocked() {
	for k, ws := range a.keyWait {
		for _, ch := range ws {
			ch <- struct{}{}
			a.parked--
		}
		a.keyWait[k] = ws[:0]
	}
}

// notifyRecorded runs on the recording thread after event e landed at
// pos: if this agent's cursor is already there and e's owner is parked,
// hand it the turn. Lock order is always Agent.mu before Log.mu, and
// record calls this after releasing Log.mu, so no cycle exists.
func (a *Agent) notifyRecorded(pos int, e Event) {
	a.mu.Lock()
	if a.parked > 0 && a.cursor == pos {
		a.wakeKeyLocked(e)
	}
	a.mu.Unlock()
}

// Master reports whether this agent records.
func (a *Agent) Master() bool { return a.master }

// getChan pops a pooled wake channel (a.mu held).
func (a *Agent) getChan() chan struct{} {
	if n := len(a.chanPool); n > 0 {
		ch := a.chanPool[n-1]
		a.chanPool = a.chanPool[:n-1]
		return ch
	}
	return make(chan struct{}, 1)
}

// wakeKeyLocked wakes one thread parked on e's key, if any (a.mu held).
func (a *Agent) wakeKeyLocked(e Event) {
	if ws, ok := a.keyWait[e]; ok && len(ws) > 0 {
		ws[0] <- struct{}{} // cap 1: never blocks (one token per park)
		a.parked--
		if len(ws) == 1 {
			a.keyWait[e] = ws[:0] // keep the backing array for reuse
		} else {
			a.keyWait[e] = append(ws[:0], ws[1:]...)
		}
	}
}

// Sync orders one synchronisation operation. The master records and
// proceeds; a slave blocks until the replayed sequence reaches an event
// matching (ltid, obj, kind), preserving the recorded total order.
//
// Virtual time: recording costs CostRRRecord; replaying costs
// CostRRReplay per operation (§2.3's agent overhead).
func (a *Agent) Sync(t *vkernel.Thread, ltid int, obj uint64, kind uint8) {
	if a.master {
		t.Clock.Advance(model.CostRRRecord)
		a.log.record(Event{LTID: ltid, Obj: obj, Kind: kind})
		return
	}
	t.Clock.Advance(model.CostRRReplay)
	key := Event{LTID: ltid, Obj: obj, Kind: kind}
	a.mu.Lock()
	for {
		pos := a.cursor
		e, exists, closed := a.log.get(pos)
		if !exists {
			if closed {
				// Log closed: run free (master is gone; the monitor's
				// divergence machinery owns correctness now).
				a.mu.Unlock()
				return
			}
			// Event not recorded yet: wait on the log's position index,
			// outside the agent lock.
			a.mu.Unlock()
			if _, ok := a.log.await(pos); !ok {
				return
			}
			a.mu.Lock()
			continue
		}
		if e == key {
			a.cursor++
			// Hand the turn to the owner of the next event, if it is
			// already parked. When the log is closed and drained past the
			// cursor, no further event will ever match a parked key —
			// release everyone to run free (Close's drain guarantee).
			if a.parked > 0 {
				if next, ok, closed := a.log.get(a.cursor); ok {
					a.wakeKeyLocked(next)
				} else if closed {
					a.wakeAllParkedLocked()
				}
			}
			a.mu.Unlock()
			return
		}
		// Not our turn. Make sure the current event's owner is woken
		// (it may have parked before this event reached the cursor),
		// then park on our own key.
		a.wakeKeyLocked(e)
		ch := a.getChan()
		a.keyWait[key] = append(a.keyWait[key], ch)
		a.parked++
		a.mu.Unlock()
		<-ch
		a.mu.Lock()
		a.chanPool = append(a.chanPool, ch)
	}
}
