// Package model provides the deterministic virtual-time substrate used by
// the whole reproduction: per-thread virtual clocks, the calibrated cost
// model for kernel and monitor operations, and a deterministic PRNG.
//
// Every simulated operation charges virtual nanoseconds to the thread that
// performs it. Synchronisation points (lockstep rendezvous, futex wakes,
// replication-buffer reads) propagate clock values so that a run's total
// virtual duration — the maximum final clock over all threads — models the
// critical path of a parallel execution. All results in EXPERIMENTS.md are
// ratios of such durations, mirroring the paper's "normalized execution
// time" metric.
package model

import (
	"fmt"
	"sync/atomic"
)

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common virtual durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(d)/float64(Second))
	}
}

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Clock is a monotone virtual clock owned by a single simulated thread.
// The owning thread advances it with Advance; other threads may read it
// and synchronise to it via SyncTo. All accesses are atomic so that
// cross-thread clock propagation (e.g. a slave reading the master's
// publish timestamp) is race-free.
type Clock struct {
	now atomic.Int64
}

// Now reports the current virtual time.
func (c *Clock) Now() Duration { return Duration(c.now.Load()) }

// Advance moves the clock forward by d (clamped at zero for negative d)
// and reports the new time.
func (c *Clock) Advance(d Duration) Duration {
	if d < 0 {
		d = 0
	}
	return Duration(c.now.Add(int64(d)))
}

// SyncTo moves the clock forward to at least t. It models the thread
// blocking until virtual time t (a rendezvous or a data dependency).
// It reports the new time, which is max(current, t).
func (c *Clock) SyncTo(t Duration) Duration {
	for {
		cur := c.now.Load()
		if cur >= int64(t) {
			return Duration(cur)
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}

// MaxClock reports the maximum current time over the given clocks.
func MaxClock(clocks ...*Clock) Duration {
	var m Duration
	for _, c := range clocks {
		if t := c.Now(); t > m {
			m = t
		}
	}
	return m
}
