package model

// Cost model constants.
//
// These constants calibrate the virtual-time simulation. They are not meant
// to match any particular machine cycle-for-cycle; they are chosen so that
// the *mechanisms* the paper identifies as dominant have the right relative
// magnitudes:
//
//   - A ptrace stop costs two context switches plus TLB/cache disturbance,
//     i.e. microseconds — three orders of magnitude above a register-only
//     syscall's kernel entry.
//   - The IP-MON fast path costs a token check plus a replication-buffer
//     copy, i.e. tens to hundreds of nanoseconds.
//   - Cross-process memory copies (process_vm_readv style) carry a fixed
//     kernel cost plus a per-byte cost.
//
// With these, a workload issuing 60k syscalls/second (dedup, water_spatial,
// network-loopback in §5.1) suffers multi-x slowdowns under pure lockstep
// monitoring and near-native execution under IP-MON, reproducing Figures
// 3–5's shape.
const (
	// CostSyscallTrap is the base kernel entry/exit cost of any system
	// call, charged even for natively executed (unmonitored, untraced)
	// calls.
	CostSyscallTrap Duration = 120

	// CostSyscallWork is the average in-kernel service cost of a cheap
	// syscall beyond the trap itself (fd lookup, copying a timeval, ...).
	CostSyscallWork Duration = 180

	// CostContextSwitch is one scheduler context switch including the
	// page-table switch and the TLB/cache fallout that follows it.
	CostContextSwitch Duration = 1500

	// CostPtraceStop is one ptrace trap delivered to a tracer: the tracee
	// stops, the tracer is scheduled, and later schedules the tracee back
	// — two context switches plus signalling overhead. GHUMVEE takes two
	// stops (syscall entry + exit) per monitored call per replica.
	CostPtraceStop Duration = 2*CostContextSwitch + 500

	// CostPtracePeek is one PTRACE_PEEKDATA-style word read. GHUMVEE uses
	// process_vm_readv instead (CostCrossCopy*), but the constant is kept
	// for the legacy copying path ablation.
	CostPtracePeek Duration = 800

	// CostCrossCopyBase and CostCrossCopyPerByte model process_vm_readv /
	// process_vm_writev: one syscall into the kernel plus a linear copy.
	CostCrossCopyBase    Duration = 600
	CostCrossCopyPerByte Duration = 1 // per 2 bytes; see CrossCopyCost

	// CostMonitorCompare is GHUMVEE's per-argument comparison logic for
	// one register argument.
	CostMonitorCompare Duration = 25

	// CostTokenCheck is IK-B's verifier check on syscall re-entry: compare
	// the in-register authorization token with the kernel-held value.
	CostTokenCheck Duration = 30

	// CostBrokerRoute is IK-B's interception + routing decision
	// (registration lookup, policy table lookup, program-counter rewrite).
	CostBrokerRoute Duration = 60

	// CostRBWriteBase / CostRBPerByte model IP-MON writing an entry header
	// or payload into the replication buffer (same-process memory,
	// cache-warm).
	CostRBWriteBase Duration = 40
	CostRBPerByte   Duration = 1 // per 4 bytes; see RBCopyCost

	// CostRBReadBase models a slave locating and validating an RB entry.
	CostRBReadBase Duration = 35

	// CostFutexWait / CostFutexWake are the kernel-assisted blocking path
	// of IP-MON's per-invocation condition variables.
	CostFutexWait Duration = 900
	CostFutexWake Duration = 700

	// CostSpinIter is one iteration of the spin-read loop slaves use when
	// the master's call is not expected to block.
	CostSpinIter Duration = 12

	// CostSignalDeliver is the kernel-side cost of delivering a signal and
	// invoking the handler.
	CostSignalDeliver Duration = 1200

	// CostRRRecord / CostRRReplay are the record/replay agent's per-sync-
	// operation costs (one shared-memory append / one ordered wait).
	CostRRRecord Duration = 45
	CostRRReplay Duration = 70

	// CostThreadSpawn is clone()-style thread creation beyond the trap.
	CostThreadSpawn Duration = 25 * Microsecond

	// CostPageFault approximates a minor fault on first touch of a mapped
	// region; charged by mmap-heavy paths.
	CostPageFault Duration = 2500

	// CostMonitorDispatch is the CP monitor's serialized per-replica
	// handling time for one lockstep round: the monitor is a single
	// process that services each replica's stop in turn (§2: "frequent
	// interactions between cross-process MVEE monitors and program
	// replicas require a high number of costly context switches").
	CostMonitorDispatch Duration = 1200

	// CostRBSharePerReplica models cache-coherence pressure on the shared
	// replication buffer: every additional consumer of a freshly written
	// entry costs the writer a cache-line transfer.
	CostRBSharePerReplica Duration = 250
)

// CrossCopyCost reports the virtual cost of one cross-address-space copy of
// n bytes (process_vm_readv / process_vm_writev equivalent).
func CrossCopyCost(n int) Duration {
	if n < 0 {
		n = 0
	}
	return CostCrossCopyBase + Duration(n/2)*CostCrossCopyPerByte
}

// RBCopyCost reports the virtual cost of copying n bytes into or out of the
// replication buffer (same address space, typically cache-warm).
func RBCopyCost(n int) Duration {
	if n < 0 {
		n = 0
	}
	return CostRBWriteBase + Duration(n/4)*CostRBPerByte
}
