package model

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	f := func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestRNGFloat64Distribution(t *testing.T) {
	// Crude uniformity check: mean of many draws should be near 0.5.
	r := NewRNG(123)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean of %d draws = %v, want ~0.5", n, mean)
	}
}

func TestRNGJitter(t *testing.T) {
	r := NewRNG(5)
	base := Duration(1000)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(base, 0.25)
		if v < 750 || v > 1250 {
			t.Fatalf("Jitter out of bounds: %v", v)
		}
	}
	if got := r.Jitter(base, 0); got != base {
		t.Fatalf("Jitter with f=0 = %v, want %v", got, base)
	}
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(11)
	child := r.Fork()
	// Parent and child must not mirror each other.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked RNG mirrors parent (%d/100 equal)", same)
	}
}

func TestCostHelpers(t *testing.T) {
	if CrossCopyCost(0) != CostCrossCopyBase {
		t.Fatalf("CrossCopyCost(0) = %v, want base", CrossCopyCost(0))
	}
	if CrossCopyCost(-5) != CostCrossCopyBase {
		t.Fatalf("CrossCopyCost(-5) should clamp to base")
	}
	if CrossCopyCost(1000) <= CrossCopyCost(10) {
		t.Fatal("CrossCopyCost not increasing in n")
	}
	if RBCopyCost(4096) <= RBCopyCost(16) {
		t.Fatal("RBCopyCost not increasing in n")
	}
	// Fast path must be far cheaper than the traced path for typical sizes.
	if RBCopyCost(512) >= CostPtraceStop {
		t.Fatalf("RB copy of 512B (%v) should cost less than a ptrace stop (%v)",
			RBCopyCost(512), CostPtraceStop)
	}
}
