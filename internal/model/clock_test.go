package model

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now = %v, want 0", c.Now())
	}
	if got := c.Advance(100); got != 100 {
		t.Fatalf("Advance(100) = %v, want 100", got)
	}
	if got := c.Advance(50); got != 150 {
		t.Fatalf("second Advance = %v, want 150", got)
	}
}

func TestClockAdvanceNegativeClamped(t *testing.T) {
	var c Clock
	c.Advance(100)
	if got := c.Advance(-40); got != 100 {
		t.Fatalf("Advance(-40) = %v, want 100 (clamped)", got)
	}
}

func TestClockSyncTo(t *testing.T) {
	var c Clock
	c.Advance(100)
	if got := c.SyncTo(50); got != 100 {
		t.Fatalf("SyncTo(50) on clock at 100 = %v, want 100", got)
	}
	if got := c.SyncTo(300); got != 300 {
		t.Fatalf("SyncTo(300) = %v, want 300", got)
	}
	if c.Now() != 300 {
		t.Fatalf("Now after SyncTo = %v, want 300", c.Now())
	}
}

func TestClockSyncToMonotoneProperty(t *testing.T) {
	// SyncTo never moves the clock backwards; Advance and SyncTo compose
	// to a monotone sequence.
	f := func(steps []int16) bool {
		var c Clock
		prev := Duration(0)
		for i, s := range steps {
			var now Duration
			if i%2 == 0 {
				now = c.Advance(Duration(s))
			} else {
				now = c.SyncTo(Duration(s))
			}
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClockConcurrentSyncTo(t *testing.T) {
	// Concurrent SyncTo calls must leave the clock at the maximum target.
	var c Clock
	var wg sync.WaitGroup
	for i := 1; i <= 64; i++ {
		wg.Add(1)
		go func(target Duration) {
			defer wg.Done()
			c.SyncTo(target)
		}(Duration(i * 10))
	}
	wg.Wait()
	if c.Now() != 640 {
		t.Fatalf("clock after concurrent SyncTo = %v, want 640", c.Now())
	}
}

func TestMaxClock(t *testing.T) {
	var a, b, d Clock
	a.Advance(5)
	b.Advance(500)
	d.Advance(50)
	if got := MaxClock(&a, &b, &d); got != 500 {
		t.Fatalf("MaxClock = %v, want 500", got)
	}
	if got := MaxClock(); got != 0 {
		t.Fatalf("MaxClock() = %v, want 0", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{5, "5ns"},
		{1500, "1.50us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationSeconds(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", got)
	}
}
