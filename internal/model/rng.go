package model

// RNG is a small deterministic PRNG (splitmix64) used everywhere the
// simulation needs randomness: ASLR layout draws, authorization tokens,
// temporal-exemption sampling, workload jitter. Determinism keeps every
// experiment reproducible run-to-run; security arguments that depend on
// unpredictability (token forgery, RB guessing) are evaluated analytically
// and by sampling over many seeds, not by relying on this PRNG being
// cryptographically strong.
type RNG struct {
	state uint64
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D}
}

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("model: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f]. It is used by
// workload generators to avoid fully synchronous phase behaviour.
func (r *RNG) Jitter(d Duration, f float64) Duration {
	if f <= 0 {
		return d
	}
	scale := 1 + f*(2*r.Float64()-1)
	return Duration(float64(d) * scale)
}

// Fork derives an independent child generator. Parent and child streams do
// not overlap for any practical sequence length.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xD6E8FEB86659FD93)
}
