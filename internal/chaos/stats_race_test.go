package chaos

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"remon/internal/fleet"
	"remon/internal/telemetry"
)

// TestStatsConsistencyUnderChaos is the torn-read audit for the
// fleet.Stats consistency contract (fleet.go): Stats and full telemetry
// scrapes run continuously while a chaos plan kills and drains shards.
// Under -race this proves the snapshot paths are lock-correct; the
// value assertions pin the contract's guarantees — per-lock consistency
// and monotone counters — across arbitrarily-timed snapshots.
func TestStatsConsistencyUnderChaos(t *testing.T) {
	const shards = 3
	f := chaosFleet(t, shards)
	defer f.Close()

	exp, _, err := f.ServeTelemetry("telemetry:9090")
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Stats scrapers: hammer the snapshot path and check the monotone /
	// per-section invariants on every observation. prev is per-goroutine:
	// monotonicity is only promised along one observer's sequence of
	// snapshots (each Stats call completes before the next starts), not
	// across interleaved observers.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev fleet.Stats
			for !stop.Load() {
				st := f.Stats()
				// Handoffs and ReplayedBytes advance inside one f.mu
				// section: replayed request bytes can never be visible
				// before the handoff that carried them.
				if st.ReplayedBytes > 0 && st.Handoffs == 0 {
					t.Error("torn read: replayed bytes visible without a handoff")
					return
				}
				// Shed is accounted with refused in the same section.
				if st.ConnsShed > st.ConnsRefused {
					t.Errorf("torn read: shed %d > refused %d", st.ConnsShed, st.ConnsRefused)
					return
				}
				// Cumulative counters are monotone along this observer's
				// snapshot sequence.
				if st.ConnsRouted < prev.ConnsRouted ||
					st.Failovers < prev.Failovers ||
					st.Handoffs < prev.Handoffs ||
					st.ReplayedBytes < prev.ReplayedBytes ||
					st.Recoveries < prev.Recoveries {
					t.Errorf("counters regressed: %+v -> %+v", prev, st)
					return
				}
				prev = st
			}
		}()
	}

	// Prometheus scraper: full exporter round-trips over the same front
	// network the chaos load uses, validated each time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			res, err := telemetry.Scrape(f.FrontNetwork(), "telemetry:9090", "/metrics", 0)
			if err != nil {
				continue // front net saturated; retry
			}
			if _, perr := telemetry.PromParse(string(res.Body)); perr != nil {
				t.Errorf("mid-chaos scrape invalid: %v", perr)
				return
			}
			f.Health() // and the health path
		}
	}()

	// The chaos run: kill every shard in turn under open-loop load.
	plan := KillEachShard(shards, 50*time.Millisecond, 120*time.Millisecond)
	rep := Run(f, plan, Load{
		Conns:           2 * shards,
		RequestsPerConn: 64,
		Window:          4,
		Gap:             3 * time.Millisecond,
	})
	stop.Store(true)
	wg.Wait()

	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("chaos invariants violated under concurrent scraping:\n%s", joinLines(v))
	}
	if rep.Kills != shards {
		t.Fatalf("injected %d kills, want %d", rep.Kills, shards)
	}
}
