package chaos

import (
	"testing"
	"time"

	"remon/internal/fleet"
)

// surgeFleet builds the elastic-campaign fleet: small per-shard
// connection caps so the surge actually saturates, and a deep admission
// retry budget (~0.75s of jittered backoff — a sum of ~95 independent
// jittered sleeps, so tightly concentrated) so clients ride out the
// autoscaler's reaction time instead of being refused the moment the
// pool is momentarily full.
func surgeFleet(t *testing.T) *fleet.Fleet {
	t.Helper()
	f, err := fleet.New(fleet.Config{
		Shards:           2,
		Replicas:         2,
		RequestSize:      32,
		ResponseSize:     128,
		Handoff:          true,
		MaxConnsPerShard: 6,
		AdmitRetries:     96,
		AdmitBackoff:     time.Millisecond,
		LockstepTimeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// surgeSchedule is the shared offered-load shape: steady trickle, a 10x
// open-loop burst, decay back to the trickle. The numbers are chosen
// against the fleet's capacity so the two runs separate cleanly:
// connections live ~1.4s (40 requests, 35ms apart), so the ~19 the
// schedule offers are all concurrent at the surge peak — under the
// elastic clamp's 24 slots (4 shards x 6) but far over the fixed pool's
// 12. The fixed pool fills every slot near-simultaneously and then
// completes nothing for ~1.4s, a gap no admission retry budget (~0.75s)
// survives; the elastic pool grows within ~100ms, so no pick ever waits
// anywhere near the budget.
func surgeSchedule() SurgeLoad {
	return SurgeLoad{
		Phases: []SurgePhase{
			{Duration: 200 * time.Millisecond, ConnsPerSec: 10},
			{Duration: 150 * time.Millisecond, ConnsPerSec: 100},
			{Duration: 200 * time.Millisecond, ConnsPerSec: 10},
		},
		RequestsPerConn: 40,
		Window:          4,
		Gap:             35 * time.Millisecond,
		SampleEvery:     5 * time.Millisecond,
		Settle:          3 * time.Second,
	}
}

// TestSurgeAutoscaleZeroLoss is the PR's acceptance scenario: a 10x
// open-loop surge with a shard killed mid-scale-up. The pool must grow
// to the MaxShards clamp, lose nothing (the admission retry budget
// bridges the scale-up; handoff bridges the kill), and shrink back to
// the floor after the decay. A second campaign against an identical
// fixed-capacity fleet must shed strictly more — the autoscaler's
// existence proof.
func TestSurgeAutoscaleZeroLoss(t *testing.T) {
	f := surgeFleet(t)
	defer f.Close()

	as := f.StartAutoscaler(fleet.AutoscalerConfig{
		Scaler: fleet.ScalerConfig{
			MinShards: 2, MaxShards: 4,
			AdmitWaitHigh: 4,
			UpRounds:      2, DownRounds: 6,
			UpCooldown: 10, DownCooldown: 4,
			InFlightFracHigh: 0.8, InFlightFracLow: 0.45,
		},
		Interval: 5 * time.Millisecond,
		Window:   4,
	})
	defer as.Close()

	// Kill a shard in the thick of the surge — while the autoscaler is
	// mid-scale-up. Supervisor recovery must preempt scaling cleanly.
	plan := Plan{Events: []Event{{At: 400 * time.Millisecond, Kind: KillShard, Shard: 0}}}
	rep := RunSurge(f, plan, surgeSchedule())

	if rep.Kills != 1 {
		t.Fatalf("injected %d kills, want 1", rep.Kills)
	}
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("invariants violated:\n%s\nstats: %+v", joinLines(v), rep.FleetStats)
	}
	if lost := rep.Lost(); lost != 0 {
		t.Fatalf("%d requests lost under the surge", lost)
	}
	if rep.RequestsSent() != rep.ResponsesReceived() {
		t.Fatalf("sent %d, answered %d", rep.RequestsSent(), rep.ResponsesReceived())
	}
	if rep.PeakServing != 4 {
		t.Fatalf("pool peaked at %d serving shards, want the MaxShards clamp 4; trajectory: %+v",
			rep.PeakServing, poolTrajectory(rep.Samples))
	}
	if rep.FinalServing != 2 {
		t.Fatalf("pool settled at %d serving shards, want the MinShards floor 2; trajectory: %+v",
			rep.FinalServing, poolTrajectory(rep.Samples))
	}
	if rep.FleetStats.ConnsShed != 0 {
		t.Fatalf("autoscaled run shed %d connections; the retry budget should have bridged the scale-up",
			rep.FleetStats.ConnsShed)
	}
	// The decision log shows both directions plus the supervisor
	// preemption lifecycle.
	ups, downs := 0, 0
	for _, ev := range as.Events() {
		switch ev.Decision {
		case fleet.ScaleUp:
			ups++
		case fleet.ScaleDown:
			downs++
		}
	}
	if ups < 2 || downs < 2 {
		t.Fatalf("scale event log: %d ups, %d downs, want >=2 each; events: %+v", ups, downs, as.Events())
	}

	// Comparison run: identical fleet and schedule, capacity pinned at 2
	// shards. The surge outruns the fixed pool's retry budget — it must
	// shed strictly more than the elastic run did.
	ff := surgeFleet(t)
	defer ff.Close()
	fixed := RunSurge(ff, Plan{}, surgeSchedule())
	if fixed.FleetStats.ConnsShed <= rep.FleetStats.ConnsShed {
		t.Fatalf("fixed pool shed %d, autoscaled shed %d — elasticity bought nothing",
			fixed.FleetStats.ConnsShed, rep.FleetStats.ConnsShed)
	}
}

// poolTrajectory compresses samples for failure messages: only the
// points where the serving count changed.
func poolTrajectory(samples []PoolSample) []PoolSample {
	var out []PoolSample
	last := -1
	for _, s := range samples {
		if s.Serving != last {
			out = append(out, s)
			last = s.Serving
		}
	}
	return out
}
