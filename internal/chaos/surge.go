// The surge campaign: open-loop load whose *offered rate* is shaped in
// phases (steady -> N-fold surge -> decay), composed with a fault plan,
// against a fleet under elastic autoscaling. Where Run proves zero-loss
// failover at fixed capacity, RunSurge proves the autoscaler's story:
// the pool grows to the clamp under the surge, sheds gracefully (typed
// backpressure, not queue collapse) at the ceiling, shrinks back after
// the decay — and a shard killed mid-scale-up still costs zero accepted
// requests. A sampler records the pool-size trajectory against the
// offered load so the bench can plot capacity chasing demand.
package chaos

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"remon/internal/fleet"
)

// SurgePhase is one segment of the offered-load schedule.
type SurgePhase struct {
	// Duration is the phase's host-time span.
	Duration time.Duration
	// ConnsPerSec is the open-loop connection arrival rate for the
	// phase. Arrivals are paced, not batched: one connection every
	// 1/rate, each running the full windowed open-loop request sequence
	// regardless of how the fleet responds — the definition of offered
	// (not admitted) load.
	ConnsPerSec int
}

// SurgeLoad shapes a surge campaign.
type SurgeLoad struct {
	// Phases is the offered-load schedule, executed in order.
	Phases []SurgePhase
	// RequestsPerConn / Window / Gap / sizes / Timeout shape each
	// launched connection exactly as Load does.
	RequestsPerConn int
	Window          int
	Gap             time.Duration
	RequestSize     int
	ResponseSize    int
	Timeout         time.Duration
	// SampleEvery is the pool-trajectory sampling period (default 5ms).
	SampleEvery time.Duration
	// Settle is how long sampling continues after the last connection
	// finishes (default 1s) — the window in which the scale-down back to
	// the floor must show up in the trajectory.
	Settle time.Duration
	// Loops is the generator's event-loop pool size (default 4).
	Loops int
}

func (l SurgeLoad) withDefaults(reqSize, respSize int) SurgeLoad {
	if len(l.Phases) == 0 {
		l.Phases = []SurgePhase{{Duration: time.Second, ConnsPerSec: 10}}
	}
	if l.RequestsPerConn <= 0 {
		l.RequestsPerConn = 32
	}
	if l.Window <= 0 {
		l.Window = 4
	}
	if l.Gap <= 0 {
		l.Gap = 500 * time.Microsecond
	}
	if l.RequestSize <= 0 {
		l.RequestSize = reqSize
	}
	if l.ResponseSize <= 0 {
		l.ResponseSize = respSize
	}
	if l.Timeout <= 0 {
		l.Timeout = 30 * time.Second
	}
	if l.SampleEvery <= 0 {
		l.SampleEvery = 5 * time.Millisecond
	}
	if l.Settle <= 0 {
		l.Settle = time.Second
	}
	if l.Loops <= 0 {
		l.Loops = 4
	}
	return l
}

// load projects the per-connection shape for the generator.
func (l SurgeLoad) load() Load {
	return Load{
		Conns:           1,
		RequestsPerConn: l.RequestsPerConn,
		Window:          l.Window,
		Gap:             l.Gap,
		RequestSize:     l.RequestSize,
		ResponseSize:    l.ResponseSize,
		Timeout:         l.Timeout,
		Loops:           l.Loops,
	}
}

// arrivals lowers the phase schedule into per-connection launch offsets:
// one connection every 1/rate through each phase — the offered-load
// definition, independent of how the fleet responds.
func (l SurgeLoad) arrivals() []time.Duration {
	var at []time.Duration
	base := time.Duration(0)
	for _, ph := range l.Phases {
		if ph.ConnsPerSec > 0 {
			interval := time.Second / time.Duration(ph.ConnsPerSec)
			for off := time.Duration(0); off < ph.Duration; off += interval {
				at = append(at, base+off)
			}
		}
		base += ph.Duration
	}
	return at
}

// PoolSample is one point on the pool-size-vs-offered-load trajectory.
type PoolSample struct {
	// At is the host-time offset into the campaign.
	At time.Duration
	// Serving / Pool are the serving shard count and total pool slots.
	Serving int
	Pool    int
	// Launched is the cumulative offered load: connections started.
	Launched int
	// Routed / Refused / Shed / AdmitWaits are the fleet's cumulative
	// admission counters at the sample.
	Routed     uint64
	Refused    uint64
	Shed       uint64
	AdmitWaits uint64
}

// SurgeReport is a completed surge campaign: the standard chaos audit
// plus the capacity trajectory.
type SurgeReport struct {
	Report
	// Samples is the pool trajectory, SampleEvery apart.
	Samples []PoolSample
	// Launched is the total offered connections.
	Launched int
	// PeakServing / FinalServing summarize the trajectory: the largest
	// serving count any sample saw, and the last sample's.
	PeakServing  int
	FinalServing int
}

// AdmitP reports the q-quantile (0 < q <= 1) of per-connection
// admission latency over connections that completed at least one
// response. Zero when none did.
func (r *SurgeReport) AdmitP(q float64) time.Duration {
	var lat []time.Duration
	for _, c := range r.Conns {
		if c.Admit > 0 {
			lat = append(lat, c.Admit)
		}
	}
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := int(q*float64(len(lat))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	return lat[idx]
}

// RunSurge executes the fault plan against f while offering load per
// the phase schedule, sampling the pool trajectory throughout (including
// the settle window after the load ends), then audits. The fleet — and
// any autoscaler attached to it — must outlive the call.
func RunSurge(f *fleet.Fleet, plan Plan, sl SurgeLoad) SurgeReport {
	reqSize, respSize := f.RequestShape()
	sl = sl.withDefaults(reqSize, respSize)
	perConn := sl.load()
	start := time.Now()

	rep := SurgeReport{Report: Report{Plan: plan, Load: perConn}}

	var injected, drains atomic.Int64
	faultsDone := make(chan struct{})
	go func() {
		defer close(faultsDone)
		runEvents(f, plan, start, &injected, &drains)
	}()

	// The generator drives the paced arrival schedule on its fixed
	// event-loop pool; finished connections stream into conns under mu
	// (shared with the sampler, which reads Launched concurrently).
	var mu sync.Mutex
	var conns []ConnReport
	var launched atomic.Int64
	g := &Gen{
		Net:      f.FrontNetwork(),
		Addr:     f.FrontAddr(),
		PerConn:  perConn,
		Arrivals: sl.arrivals(),
		Loops:    sl.Loops,
		Launched: &launched,
		OnDone: func(r ConnReport) {
			mu.Lock()
			conns = append(conns, r)
			mu.Unlock()
		},
	}
	genDone := make(chan struct{})
	go func() {
		defer close(genDone)
		g.Run()
	}()

	// Sampler: pool trajectory until the campaign (load + settle) ends.
	sampleStop := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(sl.SampleEvery)
		defer tick.Stop()
		for {
			select {
			case <-sampleStop:
				return
			case <-tick.C:
				serving, pool := f.PoolSize()
				st := f.Stats()
				mu.Lock()
				rep.Samples = append(rep.Samples, PoolSample{
					At:      time.Since(start),
					Serving: serving, Pool: pool,
					Launched:   int(launched.Load()),
					Routed:     st.ConnsRouted,
					Refused:    st.ConnsRefused,
					Shed:       st.ConnsShed,
					AdmitWaits: st.AdmitWaits,
				})
				mu.Unlock()
			}
		}
	}()

	<-genDone
	<-faultsDone

	rep.Kills = int(injected.Load())
	rep.Drains = int(drains.Load())
	if rep.Kills > 0 && !f.WaitRecoveries(rep.Kills, perConn.Timeout) {
		rep.lostVerdicts = true
	}

	// Settle: keep sampling so the shrink back to the floor is on the
	// trajectory, then stop.
	time.Sleep(sl.Settle)
	close(sampleStop)
	<-samplerDone

	rep.Launched = int(launched.Load())
	rep.Conns = conns
	rep.Elapsed = time.Since(start)
	rep.FleetStats = f.Stats()
	for _, s := range rep.Samples {
		if s.Serving > rep.PeakServing {
			rep.PeakServing = s.Serving
		}
	}
	if n := len(rep.Samples); n > 0 {
		rep.FinalServing = rep.Samples[n-1].Serving
	}
	rep.audit()
	return rep
}
