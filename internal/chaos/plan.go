// Package chaos is the fault-injection harness that proves the fleet's
// zero-loss failover story. A Plan is a seeded, deterministic schedule
// of faults — shard kills (injected divergences), administrative drains,
// network delay spikes, drop bursts, replica stalls, and divergence
// storms — executed against a running fleet while an open-loop load
// driver keeps every shard under traffic. An invariant checker audits
// the run: every accepted request got exactly one response, per-conn
// byte streams stayed monotone in virtual time, and no injected verdict
// was lost.
//
// Determinism: the schedule (event kinds, targets, offsets, fault
// parameters) derives entirely from the plan seed via the repo's
// SplitMix64 RNG, so a failing run reproduces from its seed. Host-time
// execution jitter shifts *when* faults land relative to individual
// requests — the invariants are exactly the properties that must hold
// regardless.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"remon/internal/model"
)

// Kind enumerates fault event types.
type Kind int

// Fault kinds.
const (
	// KillShard arms the compromised-master simulation on one shard: its
	// next response is tampered, the slave's IP-MON comparison declares
	// divergence, and the supervisor quarantines the shard.
	KillShard Kind = iota
	// DrainShard requests an administrative rotation of one shard.
	DrainShard
	// DelaySpike adds extra virtual latency to every front-network
	// segment for the event's span.
	DelaySpike
	// DropBurst drops every Nth front-network segment for the span;
	// the stream is reliable, so a drop is modeled as RTO redelivery
	// (the segment arrives one retransmission timeout late).
	DropBurst
	// ReplicaStall degrades one shard's backend network (extra latency +
	// periodic RTO) for the span — a struggling, but not diverged,
	// replica set.
	ReplicaStall
	// Storm arms divergence on every Serving shard at once — the
	// worst-case correlated compromise.
	Storm
)

func (k Kind) String() string {
	switch k {
	case KillShard:
		return "kill"
	case DrainShard:
		return "drain"
	case DelaySpike:
		return "delay-spike"
	case DropBurst:
		return "drop-burst"
	case ReplicaStall:
		return "replica-stall"
	case Storm:
		return "storm"
	}
	return "?"
}

// Event is one scheduled fault.
type Event struct {
	// At is the host-time offset into the run.
	At   time.Duration
	Kind Kind
	// Shard targets KillShard/DrainShard/ReplicaStall (ignored
	// otherwise).
	Shard int
	// Span bounds DelaySpike/DropBurst/ReplicaStall (the profile is
	// cleared afterwards).
	Span time.Duration
	// Extra is the added virtual latency for DelaySpike/ReplicaStall.
	Extra model.Duration
	// DropEvery is the drop period for DropBurst (every Nth segment).
	DropEvery int
}

func (e Event) String() string {
	return fmt.Sprintf("%v@%v shard=%d span=%v", e.Kind, e.At, e.Shard, e.Span)
}

// Plan is a deterministic fault schedule.
type Plan struct {
	Seed   uint64
	Events []Event
}

// KillEachShard builds the acceptance-criteria plan: kill every shard
// in turn, spaced so each quarantine+handoff+respawn cycle completes
// before the next begins.
func KillEachShard(shards int, start, spacing time.Duration) Plan {
	p := Plan{Seed: uint64(shards)}
	for i := 0; i < shards; i++ {
		p.Events = append(p.Events, Event{
			At:    start + time.Duration(i)*spacing,
			Kind:  KillShard,
			Shard: i,
		})
	}
	return p
}

// Random derives an n-event schedule over the horizon from seed. Kills
// dominate (they exercise the handoff path); the network faults fill in
// the background pressure.
func Random(seed uint64, shards, n int, horizon time.Duration) Plan {
	rng := model.NewRNG(seed)
	p := Plan{Seed: seed}
	for i := 0; i < n; i++ {
		ev := Event{
			At:    time.Duration(rng.Float64() * float64(horizon)),
			Shard: rng.Intn(shards),
			Span:  horizon / 10,
		}
		switch r := rng.Intn(10); {
		case r < 4:
			ev.Kind = KillShard
		case r < 5:
			ev.Kind = DrainShard
		case r < 7:
			ev.Kind = DelaySpike
			ev.Extra = model.Duration(50+rng.Intn(500)) * model.Microsecond
		case r < 9:
			ev.Kind = DropBurst
			ev.DropEvery = 3 + rng.Intn(8)
		default:
			ev.Kind = ReplicaStall
			ev.Extra = model.Duration(200+rng.Intn(2000)) * model.Microsecond
		}
		p.Events = append(p.Events, ev)
	}
	sort.Slice(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p
}
