package chaos

import (
	"reflect"
	"testing"
	"time"

	"remon/internal/fleet"
	"remon/internal/model"
)

func chaosFleet(t *testing.T, shards int) *fleet.Fleet {
	t.Helper()
	f, err := fleet.New(fleet.Config{
		Shards:          shards,
		Replicas:        2,
		RequestSize:     32,
		ResponseSize:    128,
		Handoff:         true,
		LockstepTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestKillEachShardZeroLoss is the acceptance run: every shard killed in
// turn while open-loop clients keep requests outstanding; the invariant
// checker must come back clean — zero lost requests, no phantom bytes,
// monotone streams, every verdict recovered.
func TestKillEachShardZeroLoss(t *testing.T) {
	const shards = 4
	f := chaosFleet(t, shards)
	defer f.Close()

	plan := KillEachShard(shards, 100*time.Millisecond, 200*time.Millisecond)
	rep := Run(f, plan, Load{
		Conns:           2 * shards,
		RequestsPerConn: 160,
		Window:          4,
		Gap:             6 * time.Millisecond,
	})

	if rep.Kills != shards {
		t.Fatalf("injected %d kills, want %d", rep.Kills, shards)
	}
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("invariants violated:\n%s\nstats: %+v", joinLines(v), rep.FleetStats)
	}
	if lost := rep.Lost(); lost != 0 {
		t.Fatalf("%d requests lost", lost)
	}
	if rep.RequestsSent() != rep.ResponsesReceived() {
		t.Fatalf("sent %d, answered %d", rep.RequestsSent(), rep.ResponsesReceived())
	}
	if rep.FleetStats.Recoveries < shards {
		t.Fatalf("recoveries %d < kills %d", rep.FleetStats.Recoveries, shards)
	}
	if rep.FleetStats.Handoffs == 0 {
		t.Fatal("no connections were handed off — the kills missed all live splices")
	}
	if rep.FleetStats.Failovers != 0 {
		t.Fatalf("%d connections degraded to cuts", rep.FleetStats.Failovers)
	}
}

// TestStormZeroLoss: correlated divergence on every shard at once; the
// supervisor recovers them serially and handoffs land on respawned
// shards — still zero loss.
func TestStormZeroLoss(t *testing.T) {
	f := chaosFleet(t, 2)
	defer f.Close()

	plan := Plan{Events: []Event{{At: 50 * time.Millisecond, Kind: Storm}}}
	rep := Run(f, plan, Load{
		Conns:           4,
		RequestsPerConn: 40,
		Window:          4,
		Gap:             4 * time.Millisecond,
	})
	if rep.Kills != 2 {
		t.Fatalf("storm armed %d shards, want 2", rep.Kills)
	}
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("invariants violated:\n%s\nstats: %+v", joinLines(v), rep.FleetStats)
	}
}

// TestNetworkFaultsZeroLoss: pure network chaos (latency spike, drop
// burst, one shard's backend stalling) — no shard ever leaves the pool,
// and the reliable-stream model must deliver everything anyway.
func TestNetworkFaultsZeroLoss(t *testing.T) {
	f := chaosFleet(t, 2)
	defer f.Close()

	plan := Plan{Events: []Event{
		{At: 20 * time.Millisecond, Kind: DelaySpike, Span: 60 * time.Millisecond, Extra: 300 * model.Microsecond},
		{At: 60 * time.Millisecond, Kind: DropBurst, Span: 60 * time.Millisecond, DropEvery: 4},
		{At: 100 * time.Millisecond, Kind: ReplicaStall, Shard: 0, Span: 60 * time.Millisecond, Extra: model.Millisecond},
	}}
	rep := Run(f, plan, Load{
		Conns:           4,
		RequestsPerConn: 60,
		Window:          4,
		Gap:             3 * time.Millisecond,
	})
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("invariants violated:\n%s", joinLines(v))
	}
	if rep.FleetStats.Handoffs != 0 || rep.FleetStats.Recoveries != 0 {
		t.Fatalf("network-only chaos triggered lifecycle events: %+v", rep.FleetStats)
	}
}

// TestRandomPlanDeterministic: the same seed always derives the same
// schedule — the reproducibility contract.
func TestRandomPlanDeterministic(t *testing.T) {
	a := Random(0xC0FFEE, 4, 12, time.Second)
	b := Random(0xC0FFEE, 4, 12, time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := Random(0xC0FFEE+1, 4, 12, time.Second)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

func joinLines(v []string) string {
	s := ""
	for _, line := range v {
		s += "  " + line + "\n"
	}
	return s
}
