// The chaos runner: executes a fault plan against a live fleet while an
// open-loop load driver keeps every shard under traffic, then audits the
// invariants. The load is windowed open-loop: each connection keeps up
// to Load.Window requests outstanding without waiting for their
// responses — exactly the state a mid-flight shard kill must not lose.
package chaos

import (
	"fmt"
	"sync/atomic"
	"time"

	"remon/internal/fleet"
	"remon/internal/vnet"
)

// Load shapes the open-loop client drive.
type Load struct {
	// Conns is the number of concurrent long-lived connections (default
	// 2x the shard count, so round-robin seeds every shard).
	Conns int
	// RequestsPerConn is the total requests each connection issues
	// (default 64).
	RequestsPerConn int
	// Window is the max outstanding (unanswered) requests per connection
	// (default 4).
	Window int
	// Gap is the host-time pacing between one connection's sends
	// (default 500µs) — it stretches the load across the fault schedule.
	Gap time.Duration
	// RequestSize / ResponseSize default to the fleet server protocol's
	// shape and must match it.
	RequestSize  int
	ResponseSize int
	// Timeout bounds how long a connection waits for its remaining
	// responses after faults (default 30s host time); a connection that
	// exceeds it records lost requests.
	Timeout time.Duration
	// Loops is the generator's event-loop pool size (default 4). The
	// whole drive costs Loops goroutines regardless of Conns.
	Loops int
}

func (l Load) withDefaults(shards, reqSize, respSize int) Load {
	if l.Conns <= 0 {
		l.Conns = 2 * shards
	}
	if l.RequestsPerConn <= 0 {
		l.RequestsPerConn = 64
	}
	if l.Window <= 0 {
		l.Window = 4
	}
	if l.Gap <= 0 {
		l.Gap = 500 * time.Microsecond
	}
	if l.RequestSize <= 0 {
		l.RequestSize = reqSize
	}
	if l.ResponseSize <= 0 {
		l.ResponseSize = respSize
	}
	if l.Timeout <= 0 {
		l.Timeout = 30 * time.Second
	}
	if l.Loops <= 0 {
		l.Loops = 4
	}
	return l
}

// ConnReport is one connection's audited outcome.
type ConnReport struct {
	Addr      string
	Sent      int    // requests written to the wire
	RespBytes int    // response bytes received
	Lost      int    // requests with no response at timeout
	Phantom   bool   // received bytes for requests never sent
	Regressed bool   // arrival stamps went backwards
	Err       string // terminal stream error, if any
	// Admit is the host time from connect start to the first complete
	// response — the end-to-end admission latency a surging client
	// experiences, including any balancer retry backoff spent waiting
	// for the autoscaler to add capacity. Zero when no response ever
	// completed.
	Admit time.Duration
	// Elapsed is the host time from connect start to the connection's
	// completion (all responses in, error, or timeout) — the response
	// latency figure the mconn bench quantiles.
	Elapsed time.Duration
}

// Run executes plan against f under load and audits the result. The
// fleet must outlive the call; Run does not Close it.
func Run(f *fleet.Fleet, plan Plan, load Load) Report {
	st := f.Stats()
	reqSize, respSize := f.RequestShape()
	load = load.withDefaults(len(st.Shards), reqSize, respSize)
	start := time.Now()

	rep := Report{Plan: plan, Load: load}

	// Fault executor: walks the schedule on its own goroutine while the
	// clients drive.
	var injected atomic.Int64
	var drains atomic.Int64
	faultsDone := make(chan struct{})
	go func() {
		defer close(faultsDone)
		runEvents(f, plan, start, &injected, &drains)
	}()

	// Open-loop clients: every connection launches at once (offset 0)
	// on the event-driven generator — the fixed-capacity drive.
	conns := make([]ConnReport, 0, load.Conns)
	g := &Gen{
		Net:      f.FrontNetwork(),
		Addr:     f.FrontAddr(),
		PerConn:  load,
		Arrivals: make([]time.Duration, load.Conns),
		Loops:    load.Loops,
		OnDone:   func(r ConnReport) { conns = append(conns, r) },
	}
	g.Run()
	<-faultsDone

	// Verdict conservation: every injected divergence must complete a
	// recovery cycle — a verdict that vanished would strand its shard.
	rep.Kills = int(injected.Load())
	rep.Drains = int(drains.Load())
	if rep.Kills > 0 && !f.WaitRecoveries(rep.Kills, load.Timeout) {
		rep.lostVerdicts = true
	}

	rep.Conns = conns
	rep.Elapsed = time.Since(start)
	rep.FleetStats = f.Stats()
	rep.audit()
	return rep
}

// runEvents applies the plan's events at their host-time offsets.
func runEvents(f *fleet.Fleet, plan Plan, start time.Time, injected, drains *atomic.Int64) {
	front := f.FrontNetwork()
	shards := len(f.Stats().Shards)
	for _, ev := range plan.Events {
		if d := time.Until(start.Add(ev.At)); d > 0 {
			time.Sleep(d)
		}
		switch ev.Kind {
		case KillShard:
			if waitServing(f, ev.Shard, 5*time.Second) {
				if f.InjectDivergence(ev.Shard) == nil {
					injected.Add(1)
				}
			}
		case DrainShard:
			// Async: DrainShard blocks for the grace+respawn cycle.
			go func(idx int) {
				if f.DrainShard(idx) == nil {
					drains.Add(1)
				}
			}(ev.Shard)
		case DelaySpike:
			front.SetFaultProfile(&vnet.FaultProfile{ExtraLatency: ev.Extra})
			time.AfterFunc(ev.Span, func() { front.SetFaultProfile(nil) })
		case DropBurst:
			front.SetFaultProfile(&vnet.FaultProfile{DropEvery: ev.DropEvery})
			time.AfterFunc(ev.Span, func() { front.SetFaultProfile(nil) })
		case ReplicaStall:
			idx := ev.Shard
			if f.SetShardFault(idx, &vnet.FaultProfile{ExtraLatency: ev.Extra, DropEvery: ev.DropEvery}) == nil {
				time.AfterFunc(ev.Span, func() { f.SetShardFault(idx, nil) })
			}
		case Storm:
			for i := 0; i < shards; i++ {
				if s, _ := f.ShardState(i); s == fleet.Serving {
					if f.InjectDivergence(i) == nil {
						injected.Add(1)
					}
				}
			}
		}
	}
}

// waitServing polls (host time, bounded) until shard idx is Serving.
func waitServing(f *fleet.Fleet, idx int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if s, _ := f.ShardState(idx); s == fleet.Serving {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Report is a completed chaos run plus its audit.
type Report struct {
	Plan Plan
	Load Load

	Conns      []ConnReport
	Kills      int
	Drains     int
	Elapsed    time.Duration
	FleetStats fleet.Stats

	lostVerdicts bool
	violations   []string
}

// Violations lists every invariant breach; empty means the run is clean.
func (r *Report) Violations() []string { return r.violations }

// Emit reports the run's audit figures as (metric, value) pairs under
// the telemetry naming convention ("_total" marks cumulative counters).
// Plain func signature so this package never imports the registry —
// harnesses register a finished report as one more collector next to
// the live fleet series.
func (r *Report) Emit(emit func(name string, v uint64)) {
	emit("kills_total", uint64(r.Kills))
	emit("drains_total", uint64(r.Drains))
	emit("requests_sent_total", uint64(r.RequestsSent()))
	emit("responses_received_total", uint64(r.ResponsesReceived()))
	emit("requests_lost_total", uint64(r.Lost()))
	emit("violations_total", uint64(len(r.violations)))
	emit("conns", uint64(len(r.Conns)))
}

// RequestsSent / ResponsesReceived total the audited connections.
func (r *Report) RequestsSent() int {
	t := 0
	for _, c := range r.Conns {
		t += c.Sent
	}
	return t
}

// ResponsesReceived counts complete responses across connections.
func (r *Report) ResponsesReceived() int {
	t := 0
	for _, c := range r.Conns {
		t += c.RespBytes / r.Load.ResponseSize
	}
	return t
}

// Lost totals requests that never got a response.
func (r *Report) Lost() int {
	t := 0
	for _, c := range r.Conns {
		t += c.Lost
	}
	return t
}

// audit evaluates the run invariants into violations.
func (r *Report) audit() {
	for i, c := range r.Conns {
		if c.Lost > 0 {
			r.violations = append(r.violations,
				fmt.Sprintf("conn %d (%s): %d requests lost (%s)", i, c.Addr, c.Lost, c.Err))
		}
		if c.Phantom {
			r.violations = append(r.violations,
				fmt.Sprintf("conn %d (%s): response bytes exceed requests sent", i, c.Addr))
		}
		if c.Regressed {
			r.violations = append(r.violations,
				fmt.Sprintf("conn %d (%s): virtual arrival stamps regressed", i, c.Addr))
		}
	}
	if r.lostVerdicts {
		r.violations = append(r.violations,
			fmt.Sprintf("verdicts lost: %d divergences injected, %d recoveries completed",
				r.Kills, r.FleetStats.Recoveries))
	}
}
