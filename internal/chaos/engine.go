// The event-driven open-loop generator: N virtual connections driven by
// a fixed pool of poller event loops instead of driveOpenLoop's two
// goroutines per connection. Each connection is a small state machine —
// window tokens, Gap pacing on a hashed timer wheel, the same
// conservation / phantom / stamp audits — advanced only when its conn
// becomes readable (vnet.Poller) or one of its timers fires. The pool
// is what makes the million-connection campaign possible: goroutines
// are O(loops), not O(conns), and per-connection cost is a struct plus
// a poller registration.
package chaos

import (
	"sync"
	"sync/atomic"
	"time"

	"remon/internal/model"
	"remon/internal/vnet"
)

// Gen is one open-loop generation campaign against a front address.
// Run/RunSurge and bench.RunMConn all lower onto it.
type Gen struct {
	// Net / Addr locate the front listener (fleet.FrontNetwork/FrontAddr).
	Net  *vnet.Network
	Addr string
	// PerConn shapes every connection. All shape fields must already be
	// positive (callers run withDefaults); Conns is ignored — the
	// campaign size is len(Arrivals).
	PerConn Load
	// Arrivals is the launch schedule: one sorted host-time offset from
	// campaign start per connection. All-zero offsets launch everything
	// at once (the fixed-capacity chaos Run); paced offsets shape an
	// offered-load rate (surge and mconn campaigns).
	Arrivals []time.Duration
	// Loops is the event-loop pool size (default 4). Total goroutine
	// cost of the campaign is exactly Loops.
	Loops int
	// Launched / Active, when non-nil, count connection launches
	// (cumulative) and in-flight connections (gauge) for samplers.
	Launched *atomic.Int64
	Active   *atomic.Int64
	// OnDone receives each connection's audited outcome as it completes.
	// Serialized by the engine; completion order, not launch order.
	OnDone func(ConnReport)

	mu sync.Mutex
}

// Run executes the campaign and blocks until every connection has
// completed (responded in full, errored, or timed out).
func (g *Gen) Run() {
	loops := g.Loops
	if loops <= 0 {
		loops = 4
	}
	if loops > len(g.Arrivals) && len(g.Arrivals) > 0 {
		loops = len(g.Arrivals)
	}
	req := make([]byte, g.PerConn.RequestSize)
	for i := range req {
		req[i] = byte('A' + i%26)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for li := 0; li < loops; li++ {
		// Stride the sorted schedule across loops so each loop's share
		// preserves the global pacing shape.
		var mine []time.Duration
		for i := li; i < len(g.Arrivals); i += loops {
			mine = append(mine, g.Arrivals[i])
		}
		if len(mine) == 0 {
			continue
		}
		wg.Add(1)
		go func(arrivals []time.Duration) {
			defer wg.Done()
			gl := &genLoop{
				g:        g,
				p:        vnet.NewPoller(),
				req:      req,
				start:    start,
				arrivals: arrivals,
			}
			gl.wheel.init(wheelTick, wheelSlots, start)
			gl.run()
		}(mine)
	}
	wg.Wait()
}

// emit hands a finished connection to the sink, serialized.
func (g *Gen) emit(r ConnReport) {
	if g.OnDone == nil {
		return
	}
	g.mu.Lock()
	g.OnDone(r)
	g.mu.Unlock()
}

// Timer-wheel shape: 512 slots of 100µs cover a 51.2ms horizon per
// round; farther deadlines (the 30s conn timeout) carry a round count.
const (
	wheelTick  = 100 * time.Microsecond
	wheelSlots = 512
)

const (
	tmSend    = iota // Gap pacing expired: try the next request
	tmDeadline       // conn timeout: finish with loss accounting
	tmConnect        // SYN retransmission: retry a backlog-refused connect
)

// Connect retransmission pacing: a backlog-full refusal retries on the
// wheel with exponential backoff. The loop must NEVER block in Connect —
// a saturated fleet fills the front backlog, and a blocked launch stops
// this loop's wheel, which stops the very deadlines that would cut the
// stuck connections and let the fleet recover.
const (
	connRetryStart = 2 * time.Millisecond
	connRetryCap   = 64 * time.Millisecond
)

type timerEnt struct {
	gc    *genConn
	kind  uint8
	round uint32
}

// timerWheel is a hashed wheel: add is O(1), advance scans only the
// slots whose time has passed. Entries are never cancelled — stale ones
// are dropped at fire via the conn's done/armed flags.
type timerWheel struct {
	tick  time.Duration
	slots [][]timerEnt
	cur   int
	curAt time.Time // host time of slot cur's boundary
	count int
}

func (w *timerWheel) init(tick time.Duration, slots int, now time.Time) {
	w.tick = tick
	w.slots = make([][]timerEnt, slots)
	w.curAt = now
}

func (w *timerWheel) add(at time.Time, e timerEnt) {
	ticks := int(at.Sub(w.curAt) / w.tick)
	if ticks < 1 {
		ticks = 1 // never the current slot: fires on the next advance
	}
	e.round = uint32(ticks / len(w.slots))
	slot := (w.cur + ticks) % len(w.slots)
	w.slots[slot] = append(w.slots[slot], e)
	w.count++
}

// advance walks slots up to now, firing due entries.
func (w *timerWheel) advance(now time.Time, fire func(timerEnt)) {
	for !w.curAt.Add(w.tick).After(now) {
		w.cur = (w.cur + 1) % len(w.slots)
		w.curAt = w.curAt.Add(w.tick)
		slot := w.slots[w.cur]
		if len(slot) == 0 {
			continue
		}
		keep := slot[:0]
		for _, e := range slot {
			if e.round > 0 {
				e.round--
				keep = append(keep, e)
				continue
			}
			w.count--
			fire(e)
		}
		w.slots[w.cur] = keep
	}
}

// genConn is one virtual connection's state machine. It mirrors
// driveOpenLoop exactly: up to Window requests outstanding, sends paced
// by Gap in host time, the virtual clock threaded through Send, and the
// same Lost / Phantom / Regressed / Admit accounting.
type genConn struct {
	key       uint64
	c         *vnet.Conn // nil until the (possibly retried) connect lands
	rep       ConnReport
	now       model.Duration // virtual send clock (threaded through Send)
	connStart time.Time
	deadline  time.Time
	gapAt     time.Time // earliest host time of the next send
	connGap   time.Duration // current SYN-retry backoff
	sent      int
	acked     int // complete responses (window tokens released)
	lastArrive model.Duration
	sendArmed bool // a tmSend entry is in the wheel
	sendDead  bool // Send errored: the reader/deadline records the loss
	done      bool
}

// genLoop is one event loop: a poller, a timer wheel, and the slice of
// connections it owns (indexed by poller cookie).
type genLoop struct {
	g        *Gen
	p        *vnet.Poller
	req      []byte
	start    time.Time
	arrivals []time.Duration // sorted launch offsets, consumed in order
	nextArr  int
	conns    []*genConn // key -> conn; nil once finished
	wheel    timerWheel
	live     int
}

func (gl *genLoop) run() {
	defer gl.p.Close()
	evs := make([]vnet.Event, 256)
	for gl.live > 0 || gl.nextArr < len(gl.arrivals) {
		now := time.Now()
		for gl.nextArr < len(gl.arrivals) && !now.Before(gl.start.Add(gl.arrivals[gl.nextArr])) {
			gl.nextArr++
			gl.launch()
		}
		gl.wheel.advance(now, gl.fire)
		if gl.live == 0 && gl.nextArr == len(gl.arrivals) {
			return
		}
		// Next wake: the earlier of the next launch and the next wheel
		// tick (a live conn always holds at least its deadline entry, so
		// the wheel is never empty while live > 0).
		deadline := gl.wheel.curAt.Add(gl.wheel.tick)
		if gl.wheel.count == 0 {
			deadline = gl.start.Add(gl.arrivals[gl.nextArr])
		} else if gl.nextArr < len(gl.arrivals) {
			if at := gl.start.Add(gl.arrivals[gl.nextArr]); at.Before(deadline) {
				deadline = at
			}
		}
		n := gl.p.WaitDeadline(evs, deadline)
		for i := 0; i < n; i++ {
			key := evs[i].Key
			if key < uint64(len(gl.conns)) {
				if gc := gl.conns[key]; gc != nil {
					gl.onReadable(gc)
				}
			}
		}
	}
}

// launch registers one connection and starts its non-blocking connect.
// The conn is live (deadline armed) from its arrival instant: a connect
// that never lands is finished by the deadline with full loss, exactly
// as a client that gave up waiting for SYN-ACK.
func (gl *genLoop) launch() {
	if gl.g.Launched != nil {
		gl.g.Launched.Add(1)
	}
	load := gl.g.PerConn
	connStart := time.Now()
	gc := &genConn{
		key:       uint64(len(gl.conns)),
		now:       0,
		connStart: connStart,
		deadline:  connStart.Add(load.Timeout),
		gapAt:     connStart,
		connGap:   connRetryStart,
	}
	gl.conns = append(gl.conns, gc)
	gl.live++
	if gl.g.Active != nil {
		gl.g.Active.Add(1)
	}
	gl.wheel.add(gc.deadline, timerEnt{gc: gc, kind: tmDeadline})
	gl.tryConnect(gc)
}

// tryConnect attempts the non-blocking connect. A full accept backlog
// re-arms the attempt on the wheel with exponential backoff (SYN
// retransmission in event form); any other refusal is terminal.
func (gl *genLoop) tryConnect(gc *genConn) {
	c, vnow, err := gl.g.Net.TryConnect(gl.g.Addr, 0)
	if err == vnet.ErrBacklogFull {
		gl.wheel.add(time.Now().Add(gc.connGap), timerEnt{gc: gc, kind: tmConnect})
		if gc.connGap *= 2; gc.connGap > connRetryCap {
			gc.connGap = connRetryCap
		}
		return
	}
	if err != nil {
		gc.rep.Err = "connect: " + err.Error()
		gl.finish(gc)
		return
	}
	gc.c = c
	gc.now = vnow
	gc.rep.Addr = c.LocalAddr()
	if err := gl.p.AddConn(c, gc.key); err != nil {
		gc.rep.Err = err.Error()
		gl.finish(gc)
		return
	}
	gl.trySend(gc, time.Now())
}

// trySend issues the next request if the window is open and Gap has
// elapsed, then arms the pacing timer for the one after. At most one
// tmSend entry per conn is ever in the wheel (sendArmed).
func (gl *genLoop) trySend(gc *genConn, now time.Time) {
	load := gl.g.PerConn
	if gc.done || gc.sendDead || gc.sent >= load.RequestsPerConn || gc.sent-gc.acked >= load.Window {
		return
	}
	if !now.Before(gc.gapAt) {
		at, err := gc.c.Send(gl.req, gc.now)
		if err != nil {
			// The conn was cut under us; the RX side (or the deadline)
			// records the loss — mirrors driveOpenLoop's writer bailing.
			gc.sendDead = true
			return
		}
		gc.now = at
		gc.sent++
		gc.gapAt = now.Add(load.Gap)
	}
	if !gc.sendArmed && gc.sent < load.RequestsPerConn && gc.sent-gc.acked < load.Window {
		gc.sendArmed = true
		gl.wheel.add(gc.gapAt, timerEnt{gc: gc, kind: tmSend})
	}
}

func (gl *genLoop) fire(e timerEnt) {
	gc := e.gc
	switch e.kind {
	case tmSend:
		gc.sendArmed = false
		if !gc.done {
			gl.trySend(gc, time.Now())
		}
	case tmConnect:
		if !gc.done {
			gl.tryConnect(gc)
		}
	case tmDeadline:
		if !gc.done {
			gl.finish(gc)
		}
	}
}

// onReadable drains the conn to ErrWouldBlock, auditing every segment —
// the reader half of driveOpenLoop, minus the sleep-poll.
func (gl *genLoop) onReadable(gc *genConn) {
	load := gl.g.PerConn
	want := load.RequestsPerConn * load.ResponseSize
	for {
		data, at, err := gc.c.RecvSeg(false)
		if err == vnet.ErrWouldBlock {
			break
		}
		if err != nil {
			gc.rep.Err = err.Error()
			gl.finish(gc)
			return
		}
		if data == nil {
			gc.rep.Err = "premature EOF"
			gl.finish(gc)
			return
		}
		if at < gc.lastArrive {
			gc.rep.Regressed = true
		}
		gc.lastArrive = at
		gc.rep.RespBytes += len(data)
		if gc.rep.Admit == 0 && gc.rep.RespBytes >= load.ResponseSize {
			gc.rep.Admit = time.Since(gc.connStart)
		}
		// Phantom check: bytes may only arrive for requests already sent.
		if int64(gc.rep.RespBytes) > int64(gc.sent)*int64(load.ResponseSize) {
			gc.rep.Phantom = true
		}
		gc.acked = gc.rep.RespBytes / load.ResponseSize
		if gc.rep.RespBytes >= want {
			gl.finish(gc)
			return
		}
	}
	// Completed responses freed window tokens: the writer half runs.
	gl.trySend(gc, time.Now())
}

// finish closes out one connection with driveOpenLoop's exact loss
// accounting and streams the report to the sink.
func (gl *genLoop) finish(gc *genConn) {
	load := gl.g.PerConn
	gc.done = true
	if gc.c != nil {
		gl.p.RemoveConn(gc.c)
		gc.c.Close()
	} else if gc.rep.Err == "" {
		gc.rep.Err = "connect: " + vnet.ErrBacklogFull.Error() + " (gave up at deadline)"
	}
	gl.conns[gc.key] = nil
	gl.live--
	if gl.g.Active != nil {
		gl.g.Active.Add(-1)
	}
	r := gc.rep
	r.Sent = gc.sent
	if missing := gc.sent*load.ResponseSize - r.RespBytes; missing > 0 {
		r.Lost = (missing + load.ResponseSize - 1) / load.ResponseSize
	}
	// Requests never written because the conn died early count as lost
	// too — the client accepted them into its send loop.
	r.Lost += load.RequestsPerConn - gc.sent
	r.Elapsed = time.Since(gc.connStart)
	gl.g.emit(r)
}
