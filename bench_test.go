// Top-level benchmark harness: one testing.B benchmark per table and
// figure of the paper's evaluation, plus the ablation benches DESIGN.md §5
// calls out. Each benchmark runs a reduced-size version of the experiment
// (the full-size runs live behind cmd/remon-bench) and reports the key
// figure-of-merit as custom metrics.
//
//	go test -bench=. -benchmem
package remon

import (
	"fmt"
	"testing"

	"remon/internal/bench"
	"remon/internal/core"
	"remon/internal/model"
	"remon/internal/policy"
	"remon/internal/vnet"
	"remon/internal/workload"
)

// BenchmarkTable1PolicyClassification regenerates Table 1 (the spatial
// exemption levels and their call sets).
func BenchmarkTable1PolicyClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.FormatTable1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// benchProfile measures one synthetic profile under one mode and reports
// the normalized execution time.
func benchProfile(b *testing.B, p workload.Profile, mode core.Mode, level policy.Level, metric string) {
	b.Helper()
	var norm float64
	for i := 0; i < b.N; i++ {
		native, err := core.RunProgram(core.Config{Mode: core.ModeNative, Seed: 7}, workload.SyntheticProgram(p))
		if err != nil {
			b.Fatal(err)
		}
		rep, err := core.RunProgram(core.Config{
			Mode: mode, Replicas: 2, Policy: level, Seed: 7, Partitions: 16,
		}, workload.SyntheticProgram(p))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Verdict.Diverged {
			b.Fatalf("diverged: %s", rep.Verdict.Reason)
		}
		norm = float64(rep.Duration) / float64(native.Duration)
	}
	b.ReportMetric(norm, metric)
}

// BenchmarkFig3SyntheticSuites regenerates Figure 3's two series on its
// highest-density benchmark (dedup) — the bar the figure's story hinges
// on.
func BenchmarkFig3SyntheticSuites(b *testing.B) {
	profiles := workload.Fig3Profiles(300)
	dedup := profiles[2]
	b.Run("dedup/no-IPMON", func(b *testing.B) {
		benchProfile(b, dedup, core.ModeGHUMVEE, policy.LevelNone, "normalized-time")
	})
	b.Run("dedup/IPMON-NONSOCKET_RW", func(b *testing.B) {
		benchProfile(b, dedup, core.ModeReMon, policy.NonsocketRWLevel, "normalized-time")
	})
}

// BenchmarkFig4PhoronixPolicies regenerates Figure 4's per-level series on
// network-loopback (the strongest slope in the figure).
func BenchmarkFig4PhoronixPolicies(b *testing.B) {
	p := workload.Fig4Profiles(250)[6] // network-loopback
	levels := []struct {
		name  string
		mode  core.Mode
		level policy.Level
	}{
		{"NO_IPMON", core.ModeGHUMVEE, policy.LevelNone},
		{"BASE", core.ModeReMon, policy.BaseLevel},
		{"NONSOCKET_RO", core.ModeReMon, policy.NonsocketROLevel},
		{"NONSOCKET_RW", core.ModeReMon, policy.NonsocketRWLevel},
		{"SOCKET_RO", core.ModeReMon, policy.SocketROLevel},
		{"SOCKET_RW", core.ModeReMon, policy.SocketRWLevel},
	}
	for _, lv := range levels {
		b.Run("network-loopback/"+lv.name, func(b *testing.B) {
			benchProfile(b, p, lv.mode, lv.level, "normalized-time")
		})
	}
}

// BenchmarkFig5ServerScaling regenerates Figure 5's shape on one epoll
// server: overhead versus replica count in the two network scenarios.
func BenchmarkFig5ServerScaling(b *testing.B) {
	o := bench.Quick()
	sb := bench.ServerBenchmarks()[4] // redis
	scenarios := []struct {
		name string
		link vnet.Link
	}{
		{"gigabit-0.1ms", vnet.GigabitLocal},
		{"realistic-2ms", vnet.LowLatency2ms},
	}
	for _, sc := range scenarios {
		for _, replicas := range []int{2, 4} {
			name := sc.name + "/replicas-" + string(rune('0'+replicas))
			b.Run(name, func(b *testing.B) {
				var overhead float64
				for i := 0; i < b.N; i++ {
					native, err := bench.RunServerOnce(sb, sc.link, core.ModeNative, 1, o)
					if err != nil {
						b.Fatal(err)
					}
					d, err := bench.RunServerOnce(sb, sc.link, core.ModeReMon, replicas, o)
					if err != nil {
						b.Fatal(err)
					}
					overhead = float64(d)/float64(native) - 1
				}
				b.ReportMetric(100*overhead, "overhead-%")
			})
		}
	}
}

// BenchmarkTable2MVEEComparison regenerates Table 2's design comparison on
// one server benchmark.
func BenchmarkTable2MVEEComparison(b *testing.B) {
	o := bench.Quick()
	sb := bench.ServerBenchmarks()[0] // beanstalkd
	b.Run("VARAN-like", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.RunServerVaran(sb, vnet.GigabitLocal, 2, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("GHUMVEE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.RunServerOnce(sb, vnet.GigabitLocal, core.ModeGHUMVEE, 2, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ReMon-gigabit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.RunServerOnce(sb, vnet.GigabitLocal, core.ModeReMon, 2, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ReMon-5ms", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.RunServerOnce(sb, vnet.Simulated5ms, core.ModeReMon, 2, o); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// runAblate measures the virtual duration of the dense workload
// (bench.SyscallDenseProgram, shared with the BENCH_rb.json tracker)
// under a config.
func runAblate(b *testing.B, cfg core.Config) model.Duration {
	b.Helper()
	cfg.Mode = core.ModeReMon
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.Policy == 0 {
		cfg.Policy = policy.SocketRWLevel
	}
	cfg.Seed = 11
	rep, err := core.RunProgram(cfg, bench.SyscallDenseProgram(800))
	if err != nil {
		b.Fatal(err)
	}
	if rep.Verdict.Diverged {
		b.Fatalf("diverged: %s", rep.Verdict.Reason)
	}
	return rep.Duration
}

// BenchmarkAblationRBSize: linear RB + arbiter reset — the smaller the
// buffer, the more GHUMVEE-arbitrated resets, the shorter the master's
// run-ahead window (§3.2 / §4 trade-off).
func BenchmarkAblationRBSize(b *testing.B) {
	for _, size := range []uint64{64 << 10, 512 << 10, 16 << 20} {
		name := map[uint64]string{64 << 10: "64KiB", 512 << 10: "512KiB", 16 << 20: "16MiB"}[size]
		b.Run(name, func(b *testing.B) {
			var d model.Duration
			for i := 0; i < b.N; i++ {
				d = runAblate(b, core.Config{RBSize: size, Partitions: 1})
			}
			b.ReportMetric(d.Seconds()*1e6, "virtual-us")
		})
	}
}

// BenchmarkAblationWakeSuppression: §3.7's "no FUTEX_WAKE when no slave
// waits" versus always waking.
func BenchmarkAblationWakeSuppression(b *testing.B) {
	b.Run("suppressed", func(b *testing.B) {
		var d model.Duration
		for i := 0; i < b.N; i++ {
			d = runAblate(b, core.Config{})
		}
		b.ReportMetric(d.Seconds()*1e6, "virtual-us")
	})
	b.Run("always-wake", func(b *testing.B) {
		var d model.Duration
		for i := 0; i < b.N; i++ {
			d = runAblate(b, core.Config{AblateAlwaysWake: true})
		}
		b.ReportMetric(d.Seconds()*1e6, "virtual-us")
	})
}

// BenchmarkAblationSpinVsFutex: §3.7's two slave wait strategies, forced
// on for the whole run.
func BenchmarkAblationSpinVsFutex(b *testing.B) {
	spin := false
	futex := true
	b.Run("predicted", func(b *testing.B) {
		var d model.Duration
		for i := 0; i < b.N; i++ {
			d = runAblate(b, core.Config{})
		}
		b.ReportMetric(d.Seconds()*1e6, "virtual-us")
	})
	b.Run("always-spin", func(b *testing.B) {
		var d model.Duration
		for i := 0; i < b.N; i++ {
			d = runAblate(b, core.Config{AblateBlocking: &spin})
		}
		b.ReportMetric(d.Seconds()*1e6, "virtual-us")
	})
	b.Run("always-futex", func(b *testing.B) {
		var d model.Duration
		for i := 0; i < b.N; i++ {
			d = runAblate(b, core.Config{AblateBlocking: &futex})
		}
		b.ReportMetric(d.Seconds()*1e6, "virtual-us")
	})
}

// BenchmarkAblationCondvarPerInvocation approximates the shared-condvar
// alternative of §3.7: per-invocation condvars never need a reset and
// wake only interested slaves; the ablation compares 2 vs 6 replicas on
// the same entry stream, where per-invocation condvars keep the wake cost
// flat per publish.
func BenchmarkAblationCondvarPerInvocation(b *testing.B) {
	for _, replicas := range []int{2, 6} {
		name := map[int]string{2: "replicas-2", 6: "replicas-6"}[replicas]
		b.Run(name, func(b *testing.B) {
			var d model.Duration
			for i := 0; i < b.N; i++ {
				d = runAblate(b, core.Config{Replicas: replicas})
			}
			b.ReportMetric(d.Seconds()*1e6, "virtual-us")
		})
	}
}

// BenchmarkMicroSyscallPaths measures the three per-call paths directly:
// native, IP-MON fast path, GHUMVEE lockstep — the cost hierarchy the
// whole design rests on.
func BenchmarkMicroSyscallPaths(b *testing.B) {
	prog := bench.MicroProgram()
	run := func(b *testing.B, cfg core.Config) model.Duration {
		rep, err := core.RunProgram(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		return rep.Duration
	}
	b.Run("native", func(b *testing.B) {
		var d model.Duration
		for i := 0; i < b.N; i++ {
			d = run(b, core.Config{Mode: core.ModeNative, Seed: 3})
		}
		b.ReportMetric(d.Seconds()*1e9/bench.MicroCallCount, "virtual-ns/call")
	})
	b.Run("ipmon", func(b *testing.B) {
		var d model.Duration
		for i := 0; i < b.N; i++ {
			d = run(b, core.Config{Mode: core.ModeReMon, Replicas: 2, Policy: policy.BaseLevel, Seed: 3})
		}
		b.ReportMetric(d.Seconds()*1e9/bench.MicroCallCount, "virtual-ns/call")
	})
	b.Run("ghumvee", func(b *testing.B) {
		var d model.Duration
		for i := 0; i < b.N; i++ {
			d = run(b, core.Config{Mode: core.ModeGHUMVEE, Replicas: 2, Seed: 3})
		}
		b.ReportMetric(d.Seconds()*1e9/bench.MicroCallCount, "virtual-ns/call")
	})
}

// BenchmarkFleetServing measures the serving-at-scale scenario: the same
// concurrent workload against 1/2/4 MVEE shards behind the virtual load
// balancer, reporting aggregate virtual-time throughput per shard count
// (the full sweep plus recovery latency lives behind
// remon-bench -fleet-json).
func BenchmarkFleetServing(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			var reqPerVSec float64
			for i := 0; i < b.N; i++ {
				rows, err := bench.RunFleetThroughput(bench.Quick(), []int{shards})
				if err != nil {
					b.Fatal(err)
				}
				reqPerVSec = rows[0].ReqPerVSec
			}
			b.ReportMetric(reqPerVSec, "virtual-req/s")
		})
	}
}
