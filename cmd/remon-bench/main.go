// Command remon-bench regenerates the paper's evaluation (§5): every
// figure and table, printed as the same rows/series the paper reports.
//
// Usage:
//
//	remon-bench [-experiment table1|fig3|fig4|fig5|table2|fleet|all]
//	            [-iterations N] [-connections N] [-requests N] [-quick]
//	            [-rb-json BENCH_rb.json] [-fleet-json BENCH_fleet.json]
//	            [-ghumvee-json BENCH_ghumvee.json] [-policy-json BENCH_policy.json]
//	            [-pipeline-json BENCH_pipeline.json] [-autotune-json BENCH_autotune.json]
//	            [-autoscale-json BENCH_autoscale.json] [-attackgen-json BENCH_attackgen.json]
//	            [-mconn-json BENCH_mconn.json] [-mconn-levels N,N,N] [-mconn-rate N]
//
// Absolute numbers are virtual-time measurements on the simulated
// substrate; the claim being reproduced is the *shape* (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"remon/internal/bench"
	"remon/internal/workload"
)

func main() {
	experiment := flag.String("experiment", "all", "table1, fig3, fig4, fig5, table2, fleet or all")
	iterations := flag.Int("iterations", 0, "synthetic profile iterations per thread (0 = default)")
	connections := flag.Int("connections", 0, "server benchmark client connections (0 = default)")
	requests := flag.Int("requests", 0, "requests per connection (0 = default)")
	maxReplicas := flag.Int("max-replicas", 0, "Figure 5 replica sweep upper bound (0 = 7)")
	quick := flag.Bool("quick", false, "small sizes for a fast smoke run")
	rbJSON := flag.String("rb-json", "", "write RB fast-path perf results (ns/op, allocs/op, virtual metrics) to this file, e.g. BENCH_rb.json")
	policyJSON := flag.String("policy-json", "", "write the relaxation-level sweep (monitored vs unmonitored ns/call at each of the 5 levels) to this file, e.g. BENCH_policy.json")
	ghumveeJSON := flag.String("ghumvee-json", "", "write GHUMVEE monitored-path perf results (ns/call, wakeups/call, epochs flushed) to this file, e.g. BENCH_ghumvee.json")
	pipelineJSON := flag.String("pipeline-json", "", "write the master-ahead pipeline sweep (MaxLag x threads x replicas: unmonitored ns/call, futex wakes/call, group commits) to this file, e.g. BENCH_pipeline.json")
	fleetJSON := flag.String("fleet-json", "", "write fleet serving results (shards, aggregate req/s in virtual time, p99 recovery latency) to this file, e.g. BENCH_fleet.json")
	handoffJSON := flag.String("handoff-json", "", "write zero-loss failover results (p50/p99 handoff latency and requests lost at 1/2/4/8 shards) to this file, e.g. BENCH_handoff.json")
	autotuneJSON := flag.String("autotune-json", "", "write the controller convergence experiment (conservative corner -> SLO under the 16-thread pipeline profile, plus the divergence snap-back) to this file, e.g. BENCH_autotune.json")
	autoscaleJSON := flag.String("autoscale-json", "", "write the elastic-vs-fixed surge campaign (pool size vs offered load, shed rate, p99 admission latency) to this file, e.g. BENCH_autoscale.json")
	attackgenJSON := flag.String("attackgen-json", "", "write the generated attack-class matrix (cells run, defeat rate, detection latency in calls per class, fleet smoke) to this file, e.g. BENCH_attackgen.json")
	mconnJSON := flag.String("mconn-json", "", "write the million-connection sweep (paced open-loop arrivals per level, admit/response latency quantiles, goroutine high-water) to this file, e.g. BENCH_mconn.json")
	mconnLevels := flag.String("mconn-levels", "", "comma-separated connection counts for the mconn sweep (default 10000,100000,1000000)")
	mconnRate := flag.Int("mconn-rate", 0, "offered arrival rate for the mconn sweep in conns/s (0 = default; tune to the host's sustained service rate)")
	fleetRecoveries := flag.Int("fleet-recoveries", 5, "injected-divergence recovery samples for the fleet scenario")
	flag.Parse()

	o := bench.Options{
		Iterations:        *iterations,
		ServerConnections: *connections,
		RequestsPerConn:   *requests,
		MaxReplicas:       *maxReplicas,
	}.Defaults()
	if *quick {
		o = bench.Quick()
	}

	run := func(name string, fn func() error) {
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "remon-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *rbJSON != "" {
		run("RB fast-path perf -> "+*rbJSON, func() error {
			results, err := bench.RunRBPerf()
			if err != nil {
				return err
			}
			payload, err := bench.MarshalRBPerf(results)
			if err != nil {
				return err
			}
			for _, r := range results {
				fmt.Printf("%-42s %12.0f ns/op %8d allocs/op %12.1f %s\n",
					r.Name, r.NsPerOp, r.AllocsPerOp, r.VirtualMetric, r.VirtualMetricName)
			}
			return os.WriteFile(*rbJSON, append(payload, '\n'), 0o644)
		})
	}
	if *policyJSON != "" {
		run("Policy relaxation sweep -> "+*policyJSON, func() error {
			results, err := bench.RunPolicyPerf()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatPolicyPerf(results))
			payload, err := bench.MarshalPolicyPerf(results)
			if err != nil {
				return err
			}
			return os.WriteFile(*policyJSON, append(payload, '\n'), 0o644)
		})
	}
	if *ghumveeJSON != "" {
		run("GHUMVEE monitored-path perf -> "+*ghumveeJSON, func() error {
			results, err := bench.RunGhumveePerf()
			if err != nil {
				return err
			}
			payload, err := bench.MarshalGhumveePerf(results)
			if err != nil {
				return err
			}
			for _, r := range results {
				fmt.Printf("%-32s %10.0f ns/mcall %8.3f wakeups/call %6d epochs flushed %12.1f virtual-ns/call\n",
					r.Name, r.MonitoredNsPerCall, r.WakeupsPerCall, r.EpochsFlushed, r.VirtualNsPerCall)
			}
			return os.WriteFile(*ghumveeJSON, append(payload, '\n'), 0o644)
		})
	}
	if *pipelineJSON != "" {
		run("Master-ahead pipeline sweep -> "+*pipelineJSON, func() error {
			results, err := bench.RunPipelinePerf()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatPipelinePerf(results))
			payload, err := bench.MarshalPipelinePerf(results)
			if err != nil {
				return err
			}
			return os.WriteFile(*pipelineJSON, append(payload, '\n'), 0o644)
		})
	}
	if *autotuneJSON != "" {
		run("Controller autotune convergence -> "+*autotuneJSON, func() error {
			res, err := bench.RunAutotune(bench.AutotuneConfig{})
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatAutotune(res))
			payload, err := bench.MarshalAutotune(res)
			if err != nil {
				return err
			}
			return os.WriteFile(*autotuneJSON, append(payload, '\n'), 0o644)
		})
	}
	if *autoscaleJSON != "" {
		run("Elastic autoscale surge (elastic vs fixed pool) -> "+*autoscaleJSON, func() error {
			res, err := bench.RunAutoscaleSurge(bench.AutoscaleConfig{})
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatAutoscale(res))
			payload, err := bench.MarshalAutoscale(res)
			if err != nil {
				return err
			}
			return os.WriteFile(*autoscaleJSON, append(payload, '\n'), 0o644)
		})
	}
	if *attackgenJSON != "" {
		run("Attack-generator matrix -> "+*attackgenJSON, func() error {
			res, err := bench.RunAttackGen(*quick)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatAttackGen(res))
			payload, err := bench.MarshalAttackGen(res)
			if err != nil {
				return err
			}
			return os.WriteFile(*attackgenJSON, append(payload, '\n'), 0o644)
		})
	}
	if *mconnJSON != "" {
		run("Million-connection sweep -> "+*mconnJSON, func() error {
			cfg := bench.MConnConfig{RatePerSec: *mconnRate}
			if *mconnLevels != "" {
				for _, s := range strings.Split(*mconnLevels, ",") {
					n, err := strconv.Atoi(strings.TrimSpace(s))
					if err != nil || n <= 0 {
						return fmt.Errorf("bad -mconn-levels entry %q", s)
					}
					cfg.Levels = append(cfg.Levels, n)
				}
			}
			res, err := bench.RunMConn(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatMConn(res))
			payload, err := bench.MarshalMConn(res)
			if err != nil {
				return err
			}
			return os.WriteFile(*mconnJSON, append(payload, '\n'), 0o644)
		})
	}
	fleetDone := false
	if *fleetJSON != "" {
		fleetDone = true
		run("Fleet serving (1/2/4/8 shards + recovery) -> "+*fleetJSON, func() error {
			results, err := bench.RunFleetServing(o, bench.DefaultFleetShardCounts, *fleetRecoveries)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFleet(results))
			payload, err := bench.MarshalFleet(results)
			if err != nil {
				return err
			}
			return os.WriteFile(*fleetJSON, append(payload, '\n'), 0o644)
		})
	}
	if *handoffJSON != "" {
		run("Zero-loss failover (1/2/4/8 shards, kill each in turn) -> "+*handoffJSON, func() error {
			results, err := bench.RunHandoffFailover(o, bench.DefaultHandoffShardCounts)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatHandoff(results))
			payload, err := bench.MarshalHandoff(results)
			if err != nil {
				return err
			}
			return os.WriteFile(*handoffJSON, append(payload, '\n'), 0o644)
		})
	}
	if (*rbJSON != "" || *fleetJSON != "" || *ghumveeJSON != "" || *policyJSON != "" || *pipelineJSON != "" || *handoffJSON != "" || *autotuneJSON != "" || *autoscaleJSON != "" || *attackgenJSON != "" || *mconnJSON != "") && *experiment == "" {
		return
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }

	if want("table1") {
		run("Table 1: monitor levels for spatial system call exemption", func() error {
			fmt.Print(bench.FormatTable1())
			return nil
		})
	}
	if want("fig3") {
		run("Figure 3: PARSEC 2.1 + SPLASH-2x normalized execution time (2 replicas)", func() error {
			res, err := bench.RunFig3(o)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFig(res, []string{"no IP-MON", "IP-MON/NONSOCKET_RW_LEVEL"}))
			return nil
		})
	}
	if want("fig4") {
		run("Figure 4: Phoronix suite across spatial relaxation policies (2 replicas)", func() error {
			res, err := bench.RunFig4(o)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFig(res, workload.Fig4LevelNames))
			return nil
		})
	}
	if want("fig5") {
		run("Figure 5: server benchmarks, two network scenarios, 2-7 replicas", func() error {
			rows, err := bench.RunFig5(o)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFig5(rows))
			return nil
		})
	}
	if want("fleet") && !fleetDone {
		run("Fleet: sharded serving, 1-8 shards behind the virtual balancer", func() error {
			results, err := bench.RunFleetServing(o, bench.DefaultFleetShardCounts, *fleetRecoveries)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFleet(results))
			return nil
		})
	}
	if want("table2") {
		run("Table 2: comparison with other MVEE designs (2 replicas)", func() error {
			rows, err := bench.RunTable2(o)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatTable2(rows))
			return nil
		})
	}
}
