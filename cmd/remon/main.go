// Command remon runs a demonstration workload under the ReMon MVEE and
// prints monitor, broker and IP-MON statistics — the quickest way to see
// the split-monitor architecture in action.
//
// Usage:
//
//	remon [-mode native|ghumvee|remon] [-replicas N] [-policy LEVEL]
//	      [-workload file|server|mixed] [-trace]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"remon/internal/apps"
	"remon/internal/core"
	"remon/internal/libc"
	"remon/internal/model"
	"remon/internal/policy"
	"remon/internal/vkernel"
	"remon/internal/vnet"
	"remon/internal/workload"
)

func parseLevel(s string) (policy.Level, error) {
	for _, l := range policy.Levels() {
		if strings.EqualFold(l.String(), s) {
			return l, nil
		}
	}
	return 0, fmt.Errorf("unknown policy level %q (want one of BASE_LEVEL, NONSOCKET_RO_LEVEL, NONSOCKET_RW_LEVEL, SOCKET_RO_LEVEL, SOCKET_RW_LEVEL)", s)
}

func parseMode(s string) (core.Mode, error) {
	switch strings.ToLower(s) {
	case "native":
		return core.ModeNative, nil
	case "ghumvee":
		return core.ModeGHUMVEE, nil
	case "remon":
		return core.ModeReMon, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func main() {
	modeFlag := flag.String("mode", "remon", "monitoring mode: native, ghumvee, remon")
	replicas := flag.Int("replicas", 2, "number of diversified replicas")
	policyFlag := flag.String("policy", "SOCKET_RW_LEVEL", "spatial exemption level")
	workloadFlag := flag.String("workload", "mixed", "workload: file, server, mixed")
	trace := flag.Bool("trace", false, "print every system call of every replica")
	flag.Parse()

	mode, err := parseMode(*modeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	level, err := parseLevel(*policyFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	net := vnet.New(vnet.GigabitLocal)
	k := vkernel.New(net)
	if *trace {
		k.SetTrace(func(t *vkernel.Thread, c *vkernel.Call) {
			fmt.Printf("  [replica %d tid %d] %s\n", t.Proc.ReplicaIndex, t.TID, c)
		})
	}

	mvee, err := core.New(core.Config{
		Mode: mode, Replicas: *replicas, Policy: level,
		Kernel: k, Partitions: 16,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "remon:", err)
		os.Exit(1)
	}

	var prog libc.Program
	var clientDone chan workload.ClientResult
	switch *workloadFlag {
	case "file":
		prog = fileWorkload
	case "server":
		prog = apps.Server(apps.ServerConfig{
			Name: "demo-httpd", Addr: "demo:80",
			RequestSize: 128, ResponseSize: 4096,
			ComputePerRequest: 10 * model.Microsecond,
			TotalConnections:  4, Style: apps.StyleEpoll,
		})
		clientDone = make(chan workload.ClientResult, 1)
		go func() {
			clientDone <- workload.RunClients(k, workload.ClientConfig{
				Addr: "demo:80", Connections: 4, RequestsPerConn: 10,
				RequestSize: 128, ResponseSize: 4096,
				ThinkTime: 5 * model.Microsecond,
			}, 7)
		}()
	default:
		prog = mixedWorkload
	}

	rep := mvee.Run(prog)
	if clientDone != nil {
		cres := <-clientDone
		fmt.Printf("clients: %d requests completed, %d errors, makespan %v\n",
			cres.Completed, cres.Errors, cres.Duration)
	}
	printReport(rep)
	if rep.Verdict.Diverged {
		os.Exit(1)
	}
}

func fileWorkload(env *libc.Env) {
	fd, errno := env.Open("/tmp/demo.txt", vkernel.OCreat|vkernel.ORdwr, 0o644)
	if errno != 0 {
		return
	}
	for i := 0; i < 100; i++ {
		env.Write(fd, []byte("The quick brown fox jumps over the lazy dog.\n"))
		env.Compute(20 * model.Microsecond)
	}
	env.Lseek(fd, 0, vkernel.SeekSet)
	buf := make([]byte, 4096)
	for {
		n, errno := env.Read(fd, buf)
		if errno != 0 || n == 0 {
			break
		}
	}
	env.Close(fd)
}

func mixedWorkload(env *libc.Env) {
	fd, _ := env.Open("/tmp/mixed.dat", vkernel.OCreat|vkernel.ORdwr, 0o644)
	mu := env.NewMutex()
	total := 0
	var handles []*libc.ThreadHandle
	for w := 0; w < 3; w++ {
		handles = append(handles, env.Spawn(func(we *libc.Env) {
			for i := 0; i < 50; i++ {
				we.Compute(10 * model.Microsecond)
				we.TimeNow()
				we.Write(fd, []byte("worker-record"))
				mu.Lock(we)
				total++
				mu.Unlock(we)
			}
		}))
	}
	for _, h := range handles {
		h.Join()
	}
	env.Close(fd)
}

func printReport(rep *core.Report) {
	fmt.Printf("mode=%v replicas=%d policy=%v\n", rep.Mode, rep.Replicas, rep.Policy)
	fmt.Printf("virtual duration: %v, user syscalls: %d\n", rep.Duration, rep.Syscalls)
	if rep.Verdict.Diverged {
		fmt.Printf("DIVERGENCE: %s (at %s)\n", rep.Verdict.Reason, rep.Verdict.Syscall)
	} else {
		fmt.Println("verdict: replicas behaved equivalently")
	}
	if rep.Mode != core.ModeNative {
		m := rep.Monitor
		fmt.Printf("GHUMVEE: %d lockstep calls (%d master-call, %d all-replica), %d ptrace stops, %d B compared, %d B replicated, %d signals deferred, %d RB resets\n",
			m.MonitoredCalls, m.MasterCalls, m.AllReplicaCalls, m.PtraceStops,
			m.BytesCompared, m.BytesReplicated, m.SignalsDeferred, m.RBResets)
		b := rep.Broker
		fmt.Printf("IK-B: %d intercepted, %d -> IP-MON, %d -> GHUMVEE, %d tokens minted, %d violations\n",
			b.Intercepted, b.RoutedIPMon, b.RoutedMonitor, b.TokensMinted, b.TokenViolations)
		for i, s := range rep.IPMon {
			fmt.Printf("IP-MON[replica %d]: %d dispatched, %d unmonitored, %d policy-forwarded, %d signal-forwarded\n",
				i, s.Dispatched, s.Unmonitored, s.ForwardedPolicy, s.ForwardedSignal)
		}
	}
}
