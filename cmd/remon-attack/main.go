// Command remon-attack runs the §4 security experiment suite: concrete
// attack scenarios against live ReMon instances, each expected to be
// detected or neutralised, plus the VARAN-baseline contrast from §6.
package main

import (
	"fmt"
	"os"

	"remon/internal/attack"
)

func main() {
	fmt.Println("ReMon security experiment suite (§4)")
	fmt.Println("------------------------------------")
	failed := 0
	for _, o := range attack.RunAll() {
		fmt.Println(o)
		if !o.Detected {
			failed++
		}
	}
	fmt.Println("------------------------------------")
	if failed > 0 {
		fmt.Printf("%d scenario(s) NOT handled as the design requires\n", failed)
		os.Exit(1)
	}
	fmt.Println("all scenarios handled as the design requires")
}
