// Webserver: an epoll-based HTTP-style server protected by ReMon, driven
// by concurrent clients over a simulated 2 ms link — the paper's
// "realistic scenario" (§5.2). The same workload is also measured natively
// and under CP-only monitoring so the overhead comparison is visible.
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"log"

	"remon/internal/apps"
	"remon/internal/core"
	"remon/internal/model"
	"remon/internal/policy"
	"remon/internal/vkernel"
	"remon/internal/vnet"
	"remon/internal/workload"
)

func runOnce(mode core.Mode, replicas int, label string, addr string) model.Duration {
	net := vnet.New(vnet.LowLatency2ms)
	k := vkernel.New(net)

	server := apps.Server(apps.ServerConfig{
		Name: "example-httpd", Addr: addr,
		RequestSize: 128, ResponseSize: 4096,
		ComputePerRequest: 10 * model.Microsecond,
		TotalConnections:  6,
		Style:             apps.StyleEpoll,
	})
	mvee, err := core.New(core.Config{
		Mode: mode, Replicas: replicas, Policy: policy.SocketRWLevel,
		Kernel: k, Partitions: 16,
	})
	if err != nil {
		log.Fatal(err)
	}

	done := make(chan *core.Report, 1)
	go func() { done <- mvee.Run(server) }()

	clients := workload.RunClients(k, workload.ClientConfig{
		Addr: addr, Connections: 6, RequestsPerConn: 20,
		RequestSize: 128, ResponseSize: 4096,
		ThinkTime: 10 * model.Microsecond,
	}, 42)
	rep := <-done

	if rep.Verdict.Diverged {
		log.Fatalf("%s diverged: %s", label, rep.Verdict.Reason)
	}
	fmt.Printf("%-28s %3d requests in %v (%d client errors)\n",
		label, clients.Completed, clients.Duration, clients.Errors)
	return clients.Duration
}

func main() {
	fmt.Println("HTTP-style server over a 2 ms link, 6 connections x 20 requests")
	fmt.Println()
	native := runOnce(core.ModeNative, 1, "native", "web-native:80")
	ghumvee := runOnce(core.ModeGHUMVEE, 2, "GHUMVEE only (2 replicas)", "web-ghumvee:80")
	remon := runOnce(core.ModeReMon, 2, "ReMon (2 replicas)", "web-remon:80")
	remon4 := runOnce(core.ModeReMon, 4, "ReMon (4 replicas)", "web-remon4:80")

	fmt.Println()
	fmt.Printf("overhead vs native: GHUMVEE %+.1f%%, ReMon(2) %+.1f%%, ReMon(4) %+.1f%%\n",
		100*(float64(ghumvee)/float64(native)-1),
		100*(float64(remon)/float64(native)-1),
		100*(float64(remon4)/float64(native)-1))
	fmt.Println("(the 2 ms link hides most server-side monitoring cost — §5.2)")
}
