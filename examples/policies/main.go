// Policies: the same syscall-dense workload under every spatial exemption
// level (Table 1), plus the probabilistic temporal policy (§3.4), showing
// the security/performance dial ReMon exposes.
//
//	go run ./examples/policies
package main

import (
	"fmt"
	"log"

	"remon/internal/core"
	"remon/internal/libc"
	"remon/internal/model"
	"remon/internal/policy"
	"remon/internal/vkernel"
)

// workload mixes the classes the levels discriminate: time queries (BASE),
// file reads (NONSOCKET_RO), file writes (NONSOCKET_RW).
func prog(env *libc.Env) {
	fd, errno := env.Open("/tmp/policy-demo", vkernel.OCreat|vkernel.ORdwr, 0o644)
	if errno != 0 {
		return
	}
	env.Write(fd, make([]byte, 4096))
	buf := make([]byte, 64)
	for i := 0; i < 400; i++ {
		env.Compute(4 * model.Microsecond)
		switch i % 3 {
		case 0:
			env.TimeNow()
		case 1:
			env.Pread(fd, buf, int64(i%4096))
		case 2:
			env.Write(fd, []byte("record"))
		}
	}
	env.Close(fd)
}

func main() {
	native, err := core.RunProgram(core.Config{Mode: core.ModeNative}, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native: %v\n\n", native.Duration)
	fmt.Printf("%-22s %12s %10s %14s %14s\n", "configuration", "duration", "normalized", "IP-MON calls", "lockstep calls")

	show := func(label string, cfg core.Config) {
		rep, err := core.RunProgram(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Verdict.Diverged {
			log.Fatalf("%s diverged: %s", label, rep.Verdict.Reason)
		}
		fmt.Printf("%-22s %12v %9.2fx %14d %14d\n", label, rep.Duration,
			float64(rep.Duration)/float64(native.Duration),
			rep.Broker.RoutedIPMon, rep.Monitor.MonitoredCalls)
	}

	show("GHUMVEE (no IP-MON)", core.Config{Mode: core.ModeGHUMVEE, Replicas: 2})
	for _, lv := range policy.Levels()[1:] {
		show(lv.String(), core.Config{Mode: core.ModeReMon, Replicas: 2, Policy: lv})
	}

	// Temporal exemption on top of a restrictive spatial level: writes are
	// monitored at NONSOCKET_RO, but a stochastic fraction gets exempted
	// after a streak of approvals.
	show("NONSOCKET_RO+temporal", core.Config{
		Mode: core.ModeReMon, Replicas: 2, Policy: policy.NonsocketROLevel,
		Temporal: &core.TemporalConfig{MinApprovals: 10, ExemptProb: 0.5, WindowCalls: 1000},
	})

	// Layered rules: a conservative BASE default with the workload file
	// (the first descriptor each replica opens, fd 0) individually pinned
	// to SOCKET_RW — per-descriptor relaxation, not a process-wide knob.
	show("BASE + fd override", core.Config{
		Mode: core.ModeReMon, Replicas: 2,
		PolicyRules: &policy.Rules{
			Default: policy.BaseLevel,
			ByFD:    map[int]policy.Level{0: policy.SocketRWLevel},
		},
	})

	// Hot reload: the same MVEE runs the workload at BASE, is re-relaxed
	// to SOCKET_RW while alive, and runs again — no rebuild, no
	// re-registration; streams adopt the new rules at their next RB
	// handoff or monitored rendezvous.
	m, err := core.New(core.Config{Mode: core.ModeReMon, Replicas: 2, Policy: policy.BaseLevel})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	// Stats on a reused MVEE are cumulative; show per-run deltas.
	var lastMon, lastUnmon uint64
	showRun := func(label string) {
		rep := m.Run(prog)
		if rep.Verdict.Diverged {
			log.Fatalf("%s diverged: %s", label, rep.Verdict.Reason)
		}
		unmon := rep.IPMon[0].Unmonitored
		fmt.Printf("%-22s %14d unmonitored %14d lockstep calls\n", label,
			unmon-lastUnmon, rep.Monitor.MonitoredCalls-lastMon)
		lastMon, lastUnmon = rep.Monitor.MonitoredCalls, unmon
	}
	fmt.Println()
	showRun("hot-reload: BASE")
	if _, err := m.SetPolicyLevel(policy.SocketRWLevel); err != nil {
		log.Fatal(err)
	}
	showRun("hot-reload: SOCKET_RW")
}
