// Autotune: the self-tuning fleet demo. Four MVEE shards boot at the
// conservative corner — BASE policy, lockstep publication (MaxLag 0),
// per-call verification (epoch 1) — and serve mixed client load while
// fleet.Controller watches each shard's telemetry deltas against a
// virtual-time SLO and relaxes one knob per round through the live
// reload paths. Once the fleet has converged to a relaxed steady state,
// one shard's master replica is compromised: the divergence verdict
// preempts the SLO loop, the supervisor respawns the shard at the
// conservative posture, and the controller's tuner snaps back with it
// and holds. The telemetry plane itself is exercised over the fleet's
// own virtual network: the demo scrapes /metrics and /health mid-run.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"remon/internal/fleet"
	"remon/internal/model"
	"remon/internal/policy"
	"remon/internal/telemetry"
)

func main() {
	base := policy.BaseLevel
	f, err := fleet.New(fleet.Config{
		Shards:          4,
		Replicas:        2,
		RequestSize:     64,
		ResponseSize:    256,
		Policy:          &base, // conservative corner: BASE / lag 0 / epoch 1
		EpochSize:       1,
		LockstepTimeout: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	exp, _, err := f.ServeTelemetry("telemetry:9090")
	if err != nil {
		log.Fatal(err)
	}
	defer exp.Close()

	fmt.Println("== fleet up: 4 shards at the conservative corner (BASE / MaxLag 0 / epoch 1) ==")

	ctl := f.StartController(fleet.ControllerConfig{
		Interval: 2 * time.Millisecond,
		// An aggressive virtual-time SLO: this workload can't meet it at
		// the conservative corner, so the controller climbs the ladder.
		Tuner: fleet.TunerConfig{SLONsPerCall: 1, MinCalls: 16},
	})
	defer ctl.Close()

	// Mixed load until every shard's spatial policy is fully relaxed and
	// a lag window has been granted (the window lands live at the next
	// respawn — lockstep-booted replica sets cannot flip protocol mid-run,
	// and this demo leaves RotateForLag off).
	relaxed := func() bool {
		for i := 0; i < 4; i++ {
			if k := ctl.ShardKnobs(i); k.Level != policy.SocketRWLevel || k.MaxLag == 0 {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(30 * time.Second)
	for !relaxed() {
		if time.Now().After(deadline) {
			log.Fatal("controller never relaxed the fleet")
		}
		f.DriveClients(fleet.DriveConfig{Conns: 8, RequestsPerConn: 8, ThinkTime: model.Microsecond})
	}

	fmt.Println("-- controller relaxed every shard; decision log (first steps of shard 0):")
	seen := 0
	for _, ev := range ctl.Events() {
		if ev.Shard == 0 {
			fmt.Printf("   %-9s %s\n", ev.Phase, ev.Reason)
			if seen++; seen == 6 {
				break
			}
		}
	}
	for i := 0; i < 4; i++ {
		k := ctl.ShardKnobs(i)
		fmt.Printf("   shard %d now at %v / lag %d / epoch %d\n", i, k.Level, k.MaxLag, k.Epoch)
	}

	// The plane under observation: scrape the fleet's own front network.
	res, err := telemetry.Scrape(f.FrontNetwork(), "telemetry:9090", "/metrics", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- /metrics over vnet (excerpt):")
	for _, line := range strings.Split(string(res.Body), "\n") {
		if strings.HasPrefix(line, "remon_shard_state") ||
			strings.HasPrefix(line, "remon_mvee_epoch_size") ||
			strings.HasPrefix(line, "remon_fleet_conns_routed_total") {
			fmt.Println("   " + line)
		}
	}

	fmt.Println("-- compromising shard 2's master replica (tampered response)")
	if err := f.InjectDivergence(2); err != nil {
		log.Fatal(err)
	}
	if !f.WaitRecoveriesDriving(1, 30*time.Second, fleet.DriveConfig{}) {
		log.Fatal("shard never recovered")
	}
	// Let the controller observe the respawned generation.
	snapped := func() bool { return ctl.ShardKnobs(2) == fleet.ConservativeKnobs() }
	deadline = time.Now().Add(10 * time.Second)
	for !snapped() {
		if time.Now().After(deadline) {
			log.Fatal("tuner never snapped back after divergence")
		}
		time.Sleep(2 * time.Millisecond)
	}
	k := ctl.ShardKnobs(2)
	fmt.Printf("-- divergence verdict wins: shard 2 reset to %v / lag %d / epoch %d (holding)\n",
		k.Level, k.MaxLag, k.Epoch)

	rep := f.Health()
	for _, sh := range rep.Shards {
		mark := ""
		if sh.Diverged {
			mark = "  <- diverged, respawned conservative"
		}
		fmt.Printf("   health: shard %d %-8s gen %d policy %-17s verdict %q%s\n",
			sh.Shard, sh.State, sh.Gen, sh.Policy, sh.LastVerdict, mark)
	}
	fmt.Println("== done: relaxation is earned by the SLO loop, trust is reset by the verdict ==")
}
