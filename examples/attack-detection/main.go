// Attack-detection: a memory-corruption exploit simulated against a
// ReMon-protected program. Diversification makes the hijack succeed only
// in one replica; the behavioural divergence is caught — in the
// unmonitored fast path by the slave's IP-MON (§3.3), in the monitored
// path by GHUMVEE's lockstep comparison.
//
//	go run ./examples/attack-detection
package main

import (
	"fmt"
	"log"

	"remon/internal/attack"
	"remon/internal/core"
	"remon/internal/libc"
	"remon/internal/policy"
	"remon/internal/vkernel"
)

func main() {
	fmt.Println("Scenario: a server parses a request; a crafted input overwrites a")
	fmt.Println("data pointer. Disjoint code layouts mean the overwritten pointer is")
	fmt.Println("only meaningful in the master replica — the slave keeps benign")
	fmt.Println("behaviour, and the MVEE sees the streams diverge.")
	fmt.Println()

	rep, err := core.RunProgram(core.Config{
		Mode: core.ModeReMon, Replicas: 2, Policy: policy.SocketRWLevel,
	}, func(env *libc.Env) {
		// The 'request': both replicas receive identical bytes.
		request := []byte("GET /account?id=1337")

		// The 'vulnerability': a bounds error lets the attacker redirect
		// the response target. Under DCL the injected address only makes
		// sense in one replica's layout, so behaviour forks.
		responseFile := "/tmp/response.log"
		if env.T.Proc.ReplicaIndex == 0 {
			responseFile = "/tmp/exfiltrated-secrets" // hijacked master
		}

		fd, errno := env.Open(responseFile, vkernel.OCreat|vkernel.ORdwr, 0o644)
		if errno != 0 {
			return
		}
		env.Write(fd, request)
		env.Close(fd)
	})
	if err != nil {
		log.Fatal(err)
	}

	if rep.Verdict.Diverged {
		fmt.Printf("DETECTED: %s (syscall: %s)\n", rep.Verdict.Reason, rep.Verdict.Syscall)
		fmt.Println("all replicas terminated before the exploit's write completed anywhere observable")
	} else {
		fmt.Println("NOT DETECTED — this should never happen")
	}

	fmt.Println()
	fmt.Println("Full §4 scenario suite:")
	for _, o := range attack.RunAll() {
		fmt.Println(" ", o)
	}
}
