// Autoscale: the elastic fleet demo. Two MVEE shards boot behind the
// virtual balancer with fleet.Autoscaler watching the admission plane.
// A surge campaign offers a 10x open-loop connection burst — far over
// the boot pool's slots — and kills a shard mid-scale-up for good
// measure. The autoscaler grows the pool to the MaxShards clamp (the
// admission retry budget bridges its reaction time, so nothing is
// shed), the supervisor's recovery preempts scale decisions while the
// killed shard respawns, and once the surge decays the autoscaler
// drains the extra shards back to the floor. The same campaign against
// an identical fixed-capacity fleet sheds connections with typed
// backpressure — the degradation the elastic pool avoids.
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"log"
	"time"

	"remon/internal/chaos"
	"remon/internal/fleet"
)

func newFleet() *fleet.Fleet {
	f, err := fleet.New(fleet.Config{
		Shards:           2,
		Replicas:         2,
		RequestSize:      32,
		ResponseSize:     128,
		Handoff:          true,
		MaxConnsPerShard: 6,
		AdmitRetries:     96,
		AdmitBackoff:     time.Millisecond,
		LockstepTimeout:  5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	return f
}

func schedule() chaos.SurgeLoad {
	return chaos.SurgeLoad{
		Phases: []chaos.SurgePhase{
			{Duration: 200 * time.Millisecond, ConnsPerSec: 10},
			{Duration: 150 * time.Millisecond, ConnsPerSec: 100}, // the surge
			{Duration: 200 * time.Millisecond, ConnsPerSec: 10},
		},
		RequestsPerConn: 40,
		Window:          4,
		Gap:             35 * time.Millisecond,
		SampleEvery:     5 * time.Millisecond,
		Settle:          3 * time.Second,
	}
}

func main() {
	f := newFleet()
	defer f.Close()

	as := f.StartAutoscaler(fleet.AutoscalerConfig{
		Scaler: fleet.ScalerConfig{
			MinShards: 2, MaxShards: 4,
			AdmitWaitHigh: 4,
			UpRounds:      2, DownRounds: 6,
			UpCooldown: 10, DownCooldown: 4,
			InFlightFracHigh: 0.8, InFlightFracLow: 0.45,
		},
		Interval: 5 * time.Millisecond,
		Window:   4,
	})
	defer as.Close()

	fmt.Println("== fleet up: 2 shards, autoscaler clamped to [2, 4] ==")
	fmt.Println("-- offering 10x surge, killing shard 0 at t=400ms (mid-scale-up)")

	plan := chaos.Plan{Events: []chaos.Event{{At: 400 * time.Millisecond, Kind: chaos.KillShard, Shard: 0}}}
	rep := chaos.RunSurge(f, plan, schedule())

	fmt.Printf("-- elastic: %d conns offered, %d requests sent, %d answered, %d lost, %d shed\n",
		rep.Launched, rep.RequestsSent(), rep.ResponsesReceived(), rep.Lost(), rep.FleetStats.ConnsShed)
	fmt.Printf("   pool peaked at %d serving shards, settled at %d; admission p99 %v\n",
		rep.PeakServing, rep.FinalServing, rep.AdmitP(0.99).Round(100*time.Microsecond))
	if v := rep.Violations(); len(v) > 0 {
		log.Fatalf("invariants violated: %v", v)
	}

	fmt.Println("-- pool trajectory (serving-count changes):")
	last := -1
	for _, s := range rep.Samples {
		if s.Serving != last {
			fmt.Printf("   t=%-7v serving=%d pool=%d offered=%d shed=%d\n",
				s.At.Round(time.Millisecond), s.Serving, s.Pool, s.Launched, s.Shed)
			last = s.Serving
		}
	}

	fmt.Println("-- autoscaler decision log (excerpt):")
	seen := 0
	for _, ev := range as.Events() {
		if ev.Decision != fleet.ScaleHold {
			fmt.Printf("   %-10s %s\n", ev.Decision, ev.Reason)
			if seen++; seen == 8 {
				break
			}
		}
	}

	// The counterfactual: the same surge against a pinned pool.
	ff := newFleet()
	defer ff.Close()
	fixed := chaos.RunSurge(ff, chaos.Plan{}, schedule())
	fmt.Printf("-- fixed pool (no autoscaler): %d shed, %d lost, admission p99 %v\n",
		fixed.FleetStats.ConnsShed, fixed.Lost(), fixed.AdmitP(0.99).Round(time.Millisecond))
	fmt.Println("== done: capacity chases offered load; at the clamp the fleet sheds, it never collapses ==")
}
