// Quickstart: run a small program under ReMon with two diversified
// replicas and inspect what the split monitor did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"remon/internal/core"
	"remon/internal/libc"
	"remon/internal/policy"
	"remon/internal/vkernel"
)

func main() {
	// 1. Configure the MVEE: full ReMon (GHUMVEE + IK-B + IP-MON), two
	//    replicas, the most permissive spatial relaxation policy.
	cfg := core.Config{
		Mode:     core.ModeReMon,
		Replicas: 2,
		Policy:   policy.SocketRWLevel,
	}

	// 2. The program to protect. It runs once per replica; the MVEE makes
	//    sure externally visible effects happen exactly once and that the
	//    replicas' system call streams stay equivalent.
	program := func(env *libc.Env) {
		fd, errno := env.Open("/tmp/hello.txt", vkernel.OCreat|vkernel.ORdwr, 0o644)
		if errno != 0 {
			log.Printf("open failed: %v", errno)
			return
		}
		env.Write(fd, []byte("hello from a multi-variant execution environment\n"))
		env.Lseek(fd, 0, vkernel.SeekSet)
		buf := make([]byte, 128)
		n, _ := env.Read(fd, buf)
		fmt.Printf("replica %d read back: %q\n", env.T.Proc.ReplicaIndex, buf[:n])
		env.Close(fd)
	}

	// 3. Run and inspect.
	report, err := core.RunProgram(cfg, program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvirtual duration: %v\n", report.Duration)
	fmt.Printf("diverged: %v\n", report.Verdict.Diverged)
	fmt.Printf("IK-B routed %d calls to IP-MON (fast path) and %d to GHUMVEE (lockstep)\n",
		report.Broker.RoutedIPMon, report.Broker.RoutedMonitor)
	fmt.Printf("GHUMVEE performed %d lockstep rendezvous\n", report.Monitor.MonitoredCalls)
}
