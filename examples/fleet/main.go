// Fleet: the serving-at-scale demo. Four MVEE shards serve concurrent
// client streams behind the virtual load balancer; mid-run, one shard's
// master replica is compromised and tampers with an unmonitored response.
// The slave's IP-MON comparison catches the divergence, the supervisor
// quarantines the shard — and, with live handoff enabled, freezes the
// shard's in-flight connections, harvests their queued segments, and
// replays the unacknowledged tail onto healthy successor shards, so
// every client stream completes with zero lost requests while the
// compromised shard's replica set is recycled and respawned.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"time"

	"remon/internal/fleet"
	"remon/internal/model"
)

func main() {
	f, err := fleet.New(fleet.Config{
		Shards:          4,
		Replicas:        2,
		RequestSize:     64,
		ResponseSize:    256,
		Handoff:         true,
		Routing:         fleet.RouteLeastLoaded,
		LockstepTimeout: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	fmt.Println("== fleet up: 4 ReMon shards behind", f.FrontAddr(), "(live handoff on) ==")

	loadDone := make(chan []fleet.ConnOutcome, 1)
	go func() {
		loadDone <- f.DriveClients(fleet.DriveConfig{
			Conns: 24, RequestsPerConn: 40, ThinkTime: 5 * model.Microsecond,
		})
	}()

	time.Sleep(2 * time.Millisecond)
	fmt.Println("-- compromising shard 0's master replica (tampered unmonitored response)")
	if err := f.InjectDivergence(0); err != nil {
		log.Fatal(err)
	}
	if !f.WaitRecoveriesDriving(1, 30*time.Second, fleet.DriveConfig{}) {
		log.Fatal("shard never recovered")
	}
	out := <-loadDone

	perShard := map[int][2]int{} // shard -> {completed, errors}
	unrouted := 0
	for _, o := range out {
		shard, _, ok := f.RouteOf(o.LocalAddr)
		if !ok {
			unrouted++
			continue
		}
		agg := perShard[shard]
		agg[0] += o.Completed
		agg[1] += o.Errors
		perShard[shard] = agg
	}
	fmt.Println("\n-- per-shard client outcome --")
	for i := 0; i < 4; i++ {
		agg := perShard[i]
		note := ""
		if i == 0 {
			// RouteOf reports where a stream finished: the quarantined
			// shard's streams were handed off and completed elsewhere.
			note = "   <- compromised; its streams handed off + finished on other shards"
		}
		fmt.Printf("shard %d: %4d completed, %2d errors%s\n", i, agg[0], agg[1], note)
	}
	if unrouted > 0 {
		fmt.Printf("(%d connections refused during the quarantine window)\n", unrouted)
	}

	fmt.Println("\n-- shard 0 lifecycle --")
	for _, tr := range f.Transitions() {
		if tr.Shard != 0 {
			continue
		}
		fmt.Printf("gen %d: %-11v -> %-11v  %s\n", tr.Gen, tr.From, tr.To, tr.Reason)
	}

	st := f.Stats()
	fmt.Printf("\nverdict: %q\n", st.Shards[0].LastVerdict.Reason)
	fmt.Printf("conns routed=%d refused=%d failovers=%d recoveries=%d\n",
		st.ConnsRouted, st.ConnsRefused, st.Failovers, st.Recoveries)
	fmt.Printf("handoffs=%d replayed=%dB shed=%d\n",
		st.Handoffs, st.ReplayedBytes, st.ConnsShed)
	if lats := f.RecoveryLatencies(); len(lats) > 0 {
		fmt.Printf("recovery latency: %v (host time)\n", lats[0].Round(10*time.Microsecond))
	}
	if lats := f.HandoffLatencies(); len(lats) > 0 {
		fmt.Printf("first handoff latency: %v (host time)\n", lats[0].Round(10*time.Microsecond))
	}
}
